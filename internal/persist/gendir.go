package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Generation-versioned bundle roots (internal/adapt's promotion target).
//
// A plain bundle directory — manifest.json + bundle.gob at the root — is
// "generation 0": every registry that predates online adaptation keeps
// loading it unchanged. A promotion adds a gen-%06d subdirectory (itself
// a complete SaveBundle directory) and then atomically publishes a sealed
// CURRENT pointer file naming it. Commit order mirrors the checkpoint
// store's manifest-last protocol: the generation directory is fully
// written and verified before the pointer flips, so a reader either
// resolves the previous generation or the new one, never a torn mix. A
// crash between the two leaves an orphan gen directory that prune
// eventually collects; the serving pointer is untouched.
//
// The pointer also records the last-known-good generation, making
// rollback a pure pointer rewrite — no bundle bytes move.

// CurrentName is the sealed pointer file a generation-versioned bundle
// root carries. Absent on plain (pre-adaptation) bundle directories.
const CurrentName = "CURRENT"

// BaseGenDir is the pointer target meaning "the root directory itself"
// (generation 0, the exported base bundle).
const BaseGenDir = "."

// genPrefix and quarantinePrefix name generation subdirectories and
// quarantined (gate-failed or corrupt) candidates.
const (
	genPrefix        = "gen-"
	quarantinePrefix = "quarantine-"
)

// GenPointer is the decoded CURRENT file: which generation directory
// serves, and which one rollback returns to.
type GenPointer struct {
	// Generation is the monotonically increasing adaptation generation
	// (0 = the base export at the root).
	Generation int64 `json:"generation"`
	// Dir is the bundle directory relative to the root: "gen-000001", or
	// "." for the base bundle.
	Dir string `json:"dir"`
	// BundleSHA256 pins the sealed bundle file the pointer promotes (for
	// status surfaces; LoadBundle re-verifies the manifest's own SHA).
	BundleSHA256 string `json:"bundle_sha256,omitempty"`
	// LastKnownGood is the Dir-style name of the generation rollback
	// restores ("." when the base bundle is the fallback). Empty means
	// the base.
	LastKnownGood string `json:"last_known_good,omitempty"`
}

// GenDirName formats the directory name of generation gen.
func GenDirName(gen int64) string {
	return fmt.Sprintf("%s%06d", genPrefix, gen)
}

// ParseGeneration extracts the generation number from a gen-%06d (or
// quarantine-gen-%06d) directory name; ok is false for anything else.
func ParseGeneration(name string) (int64, bool) {
	return parseGenName(name)
}

// parseGenName extracts the generation number from a gen-%06d (or
// quarantine-gen-%06d) directory name; ok is false for anything else.
func parseGenName(name string) (int64, bool) {
	name = strings.TrimPrefix(name, quarantinePrefix)
	rest, ok := strings.CutPrefix(name, genPrefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// WriteCurrent atomically publishes the CURRENT pointer. The write runs
// through the persist.save fault site's atomic-rename protocol via
// faultSite, so chaos plans can model a crash between the staged pointer
// and its publication (the previous pointer then keeps serving).
func WriteCurrent(root string, p GenPointer, faultSite string) error {
	if p.Dir == "" {
		return fmt.Errorf("persist: CURRENT pointer names no directory")
	}
	data, err := json.Marshal(&p)
	if err != nil {
		return fmt.Errorf("persist: CURRENT: %w", err)
	}
	sealed, err := MarshalSealed(data)
	if err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(root, CurrentName), sealed, faultSite)
}

// ReadCurrent reads and verifies the CURRENT pointer. A missing file
// returns os.ErrNotExist (the root is a plain generation-0 bundle); a
// torn or corrupt pointer returns a wrapped ErrCorrupt.
func ReadCurrent(root string) (GenPointer, error) {
	var p GenPointer
	raw, err := os.ReadFile(filepath.Join(root, CurrentName))
	if err != nil {
		return p, err
	}
	var data []byte
	if err := UnmarshalSealed(raw, &data); err != nil {
		return p, fmt.Errorf("persist: CURRENT: %w", err)
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("persist: CURRENT: %w (%w)", err, ErrCorrupt)
	}
	if p.Dir == "" {
		return p, fmt.Errorf("persist: CURRENT names no directory (%w)", ErrCorrupt)
	}
	return p, nil
}

// GenEntry is one generation subdirectory of a bundle root.
type GenEntry struct {
	Name       string
	Generation int64
}

// ListGenerations returns the root's gen-* subdirectories, newest first.
// Quarantined directories are excluded — they must never be resolvable.
func ListGenerations(root string) []GenEntry {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	var out []GenEntry
	for _, e := range ents {
		if !e.IsDir() || strings.HasPrefix(e.Name(), quarantinePrefix) {
			continue
		}
		if g, ok := parseGenName(e.Name()); ok {
			out = append(out, GenEntry{Name: e.Name(), Generation: g})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Generation > out[j].Generation })
	return out
}

// NextGeneration returns 1 + the highest generation number in use at the
// root — counting live gen directories, quarantined ones (their numbers
// are burned, never reused), and the CURRENT pointer itself.
func NextGeneration(root string) int64 {
	var max int64
	ents, err := os.ReadDir(root)
	if err == nil {
		for _, e := range ents {
			if g, ok := parseGenName(e.Name()); ok && g > max {
				max = g
			}
		}
	}
	if p, err := ReadCurrent(root); err == nil && p.Generation > max {
		max = p.Generation
	}
	return max + 1
}

// ResolveInfo reports how a bundle root was resolved to a concrete
// bundle directory.
type ResolveInfo struct {
	// Dir is the directory the bundle was loaded from.
	Dir string
	// DirName is the pointer-style name of Dir ("." or "gen-%06d").
	DirName string
	// Generation is the adaptation generation served (0 = base).
	Generation int64
	// LastKnownGood is the pointer's recorded rollback target ("" when
	// the root has no pointer).
	LastKnownGood string
	// Fallback is true when the pointer (or its target) was unusable and
	// an older generation or the base bundle was served instead.
	Fallback bool
}

// ResolveBundle loads the bundle a generation-versioned root currently
// designates. Resolution order: the CURRENT pointer's target; on a
// missing pointer, the root itself (plain generation-0 layout, exactly
// LoadBundle's historical behavior). A corrupt pointer, or a pointer
// whose target fails to load, falls back — last-known-good first, then
// every remaining generation newest-first, then the base — so a serving
// process survives a torn promotion or post-promotion disk rot by
// serving the newest loadable generation rather than nothing.
func ResolveBundle(root string) (*Bundle, *Manifest, ResolveInfo, error) {
	ptr, perr := ReadCurrent(root)
	if perr != nil && os.IsNotExist(perr) {
		b, m, err := LoadBundle(root)
		return b, m, ResolveInfo{Dir: root, DirName: BaseGenDir}, err
	}

	info := ResolveInfo{LastKnownGood: ptr.LastKnownGood}
	var tried []string
	try := func(name string, gen int64, fallback bool) (*Bundle, *Manifest, bool) {
		for _, t := range tried {
			if t == name {
				return nil, nil, false
			}
		}
		tried = append(tried, name)
		dir := root
		if name != BaseGenDir {
			dir = filepath.Join(root, name)
		}
		b, m, err := LoadBundle(dir)
		if err != nil {
			return nil, nil, false
		}
		info.Dir, info.DirName, info.Generation, info.Fallback = dir, name, gen, fallback
		return b, m, true
	}

	if perr == nil {
		if b, m, ok := try(ptr.Dir, ptr.Generation, false); ok {
			return b, m, info, nil
		}
		if lkg := ptr.LastKnownGood; lkg != "" {
			g, _ := parseGenName(lkg)
			if b, m, ok := try(lkg, g, true); ok {
				return b, m, info, nil
			}
		}
	}
	for _, e := range ListGenerations(root) {
		if b, m, ok := try(e.Name, e.Generation, true); ok {
			return b, m, info, nil
		}
	}
	if b, m, ok := try(BaseGenDir, 0, true); ok {
		return b, m, info, nil
	}
	return nil, nil, info, fmt.Errorf("persist: no loadable generation under %s (%w)", root, ErrCorrupt)
}

// QuarantineGeneration renames a gate-failed or corrupt candidate
// generation out of the resolvable namespace (gen-000007 →
// quarantine-gen-000007), keeping the bytes for forensics. Prune bounds
// how many quarantined directories accumulate.
func QuarantineGeneration(root, name string) (string, error) {
	if _, ok := parseGenName(name); !ok || strings.HasPrefix(name, quarantinePrefix) {
		return "", fmt.Errorf("persist: %q is not a generation directory", name)
	}
	q := quarantinePrefix + name
	if err := os.Rename(filepath.Join(root, name), filepath.Join(root, q)); err != nil {
		return "", fmt.Errorf("persist: quarantine %s: %w", name, err)
	}
	return q, nil
}

// PruneGenerations bounds the root's disk growth after a promotion,
// mirroring the checkpoint store's Prune semantics: the newest keep live
// generation directories survive, pinned names (the serving generation
// and last-known-good) always survive regardless of age, and everything
// older is deleted. Quarantined directories are pruned to the same keep
// bound by name. The base bundle at the root is never touched. Returns
// the removed directory names.
func PruneGenerations(root string, keep int, pinned ...string) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	pin := make(map[string]bool, len(pinned))
	for _, p := range pinned {
		pin[p] = true
	}
	var removed []string
	live := ListGenerations(root)
	kept := 0
	for _, e := range live {
		if pin[e.Name] {
			continue
		}
		if kept < keep {
			kept++
			continue
		}
		if err := os.RemoveAll(filepath.Join(root, e.Name)); err != nil {
			return removed, fmt.Errorf("persist: prune %s: %w", e.Name, err)
		}
		removed = append(removed, e.Name)
	}

	ents, err := os.ReadDir(root)
	if err != nil {
		return removed, nil
	}
	var quarantined []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), quarantinePrefix) {
			quarantined = append(quarantined, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(quarantined))) // newest gen numbers first
	for i, name := range quarantined {
		if i < keep {
			continue
		}
		if err := os.RemoveAll(filepath.Join(root, name)); err != nil {
			return removed, fmt.Errorf("persist: prune %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}

package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type sealedPayload struct {
	Name string
	Vals []float64
}

func TestSealUnsealRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	sealed := Seal(payload)
	if len(sealed) != len(payload)+footerSize {
		t.Fatalf("sealed length %d, want payload %d + footer %d", len(sealed), len(payload), footerSize)
	}
	got, err := Unseal(sealed)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round-trip mismatch: %q", got)
	}
}

func TestUnsealDetectsEveryFlippedByte(t *testing.T) {
	payload := []byte("integrity matters")
	sealed := Seal(payload)
	// Flip each byte of the sealed image in turn; every single-byte
	// corruption must be detected (payload via CRC/SHA, footer fields via
	// their own mismatch, magic via hasFooter).
	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x40
		if _, err := Unseal(bad); err == nil {
			t.Fatalf("flipped byte %d went undetected", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped byte %d: error %v is not ErrCorrupt", i, err)
		}
	}
}

func TestSaveLoadSealedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	in := sealedPayload{Name: "fe", Vals: []float64{1.5, -2.25, 3.125}}
	if err := Save(path, &in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var out sealedPayload
	if err := Load(path, &out); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Name != in.Name || len(out.Vals) != len(in.Vals) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i, v := range in.Vals {
		if out.Vals[i] != v {
			t.Fatalf("value %d: %v != %v", i, out.Vals[i], v)
		}
	}
}

func TestLoadCorruptByteIsErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	in := sealedPayload{Name: "fe", Vals: []float64{1, 2, 3}}
	if err := Save(path, &in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out sealedPayload
	err = Load(path, &out)
	if err == nil {
		t.Fatal("corrupt file loaded without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", err)
	}
}

func TestLoadTornTailIsErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	in := sealedPayload{Name: "fe", Vals: []float64{4, 5, 6}}
	if err := Save(path, &in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the footer plus a little of the body: the v2 header
	// survives, the footer does not — the signature of a torn write.
	torn := data[:len(data)-footerSize-3]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	var out sealedPayload
	err = Load(path, &out)
	if err == nil {
		t.Fatal("torn file loaded without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", err)
	}
}

func TestLegacyV1FileStillLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.gob")
	in := sealedPayload{Name: "old", Vals: []float64{7, 8}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTo(f, &in); err != nil { // v1: footerless stream
		t.Fatalf("SaveTo: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out sealedPayload
	if err := Load(path, &out); err != nil {
		t.Fatalf("legacy v1 file failed to load: %v", err)
	}
	if out.Name != "old" || len(out.Vals) != 2 {
		t.Fatalf("legacy round trip mismatch: %+v", out)
	}
}

func TestWriteFileAtomicLeavesNoTmpOnSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, []byte("hello"), ""); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.bin" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
}

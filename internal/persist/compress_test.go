package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/proj"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// compressFE rewrites one trained front-end into its compressed form at
// the given rank and precision: a projection fitted on the probe
// vectors, the float64 weights projected into the rank space (w' = B·w,
// so w'·Bx ≈ w·x), and for int8 the projected weights quantized with the
// float64 set dropped — the same shape the experiments layer exports.
func compressFE(t *testing.T, fe FrontEndModel, probes []*sparse.Vector, rank int, prec svm.Precision) FrontEndModel {
	t.Helper()
	p, err := proj.Fit(probes, fe.SpaceDim(), proj.Config{Rank: rank, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := p.Pack(prec)
	if err != nil {
		t.Fatal(err)
	}
	dim := fe.SpaceDim()
	ovr := &svm.OneVsRest{NumClasses: fe.OVR.NumClasses}
	for _, m := range fe.OVR.Models {
		w := make([]float64, rank)
		for d := 0; d < rank; d++ {
			row := p.Basis[d*dim : (d+1)*dim]
			var s float64
			for j, wv := range m.W {
				s += wv * row[j]
			}
			w[d] = s
		}
		ovr.Models = append(ovr.Models, &svm.Model{W: w, Bias: m.Bias})
	}
	fe.Proj = packed
	if prec == svm.Int8 {
		q, err := ovr.Quantize()
		if err != nil {
			t.Fatal(err)
		}
		fe.OVR, fe.Quant, fe.Precision = nil, q, svm.Int8.String()
	} else {
		fe.OVR, fe.Precision = ovr, prec.String()
	}
	return fe
}

func TestCompressedBundleRoundTrip(t *testing.T) {
	b, probes := trainedBundle(t, 7)
	dim := b.FrontEnds[0].SpaceDim()
	const rank = 6

	for _, prec := range []svm.Precision{svm.Float64, svm.Float32, svm.Int8} {
		t.Run(prec.String(), func(t *testing.T) {
			cb := &Bundle{Languages: b.Languages, Fusion: b.Fusion}
			for i := range b.FrontEnds {
				cb.FrontEnds = append(cb.FrontEnds, compressFE(t, b.FrontEnds[i], probes, rank, prec))
			}
			dir := t.TempDir()
			if err := SaveBundle(dir, cb, Manifest{Seed: 7}); err != nil {
				t.Fatal(err)
			}
			lb, m, err := LoadBundle(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Manifest geometry records the projection.
			if len(m.FrontEndDims) != len(cb.FrontEnds) {
				t.Fatalf("manifest records %d geometries, want %d", len(m.FrontEndDims), len(cb.FrontEnds))
			}
			for _, d := range m.FrontEndDims {
				if d.Dim != dim || d.Rank != rank || d.Precision != prec.String() {
					t.Fatalf("manifest geometry %+v, want dim %d rank %d precision %s", d, dim, rank, prec)
				}
			}
			// Loaded kernels score identically to the pre-save ones.
			for _, v := range probes {
				for f := range cb.FrontEnds {
					pv := cb.FrontEnds[f].Proj.Apply(v)
					a := cb.FrontEnds[f].Scores(pv)
					c := lb.FrontEnds[f].Scores(pv)
					for k := range a {
						if a[k] != c[k] {
							t.Fatalf("front-end %d compressed scores differ after round trip", f)
						}
					}
				}
			}
			// The int8 compressed bundle must be smaller on disk even at
			// this toy dimension (20-dim space, where TFLLR and gob
			// framing dominate); the ≥5× ratio at real supervector
			// dimensions is gated by the compress-smoke CI job and
			// BENCH_compress.json.
			if prec == svm.Int8 {
				udir := t.TempDir()
				if err := SaveBundle(udir, b, Manifest{Seed: 7}); err != nil {
					t.Fatal(err)
				}
				cs := bundleSize(t, dir)
				us := bundleSize(t, udir)
				if cs >= us {
					t.Fatalf("int8 bundle is %d bytes vs %d uncompressed: expected smaller", cs, us)
				}
			}
		})
	}
}

func bundleSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, defaultBundleFile))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestCompressedBundleValidateRejectsMismatches(t *testing.T) {
	b, probes := trainedBundle(t, 9)
	cb := &Bundle{Languages: b.Languages}
	for i := range b.FrontEnds {
		cb.FrontEnds = append(cb.FrontEnds, compressFE(t, b.FrontEnds[i], probes, 5, svm.Int8))
	}
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Bundle){
		"rank disagrees with kernel dim": func(x *Bundle) { x.FrontEnds[0].Quant.Dim = 9 },
		"int8 kernel without precision":  func(x *Bundle) { x.FrontEnds[0].Precision = "" },
		"precision without kernel":       func(x *Bundle) { x.FrontEnds[1].Quant = nil },
		"unknown precision":              func(x *Bundle) { x.FrontEnds[0].Precision = "bf16" },
		"projection dim vs space":        func(x *Bundle) { x.FrontEnds[0].Proj.Dim = 4 },
	}
	for name, mutate := range mutations {
		x := &Bundle{Languages: cb.Languages}
		for i := range cb.FrontEnds {
			fe := cb.FrontEnds[i]
			q := *fe.Quant
			fe.Quant = &q
			if fe.Proj != nil {
				p := *fe.Proj
				fe.Proj = &p
			}
			x.FrontEnds = append(x.FrontEnds, fe)
		}
		mutate(x)
		if err := x.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the mismatch", name)
		}
	}
}

// TestManifestDimsMismatchRejected is the registry-facing half of the
// dimension fix: a manifest whose recorded projection rank disagrees with
// the bundle it sits next to (wrong file swapped in, mixed generations)
// must fail the load as corruption — never reach scoring.
func TestManifestDimsMismatchRejected(t *testing.T) {
	b, probes := trainedBundle(t, 11)
	cb := &Bundle{Languages: b.Languages}
	for i := range b.FrontEnds {
		cb.FrontEnds = append(cb.FrontEnds, compressFE(t, b.FrontEnds[i], probes, 4, svm.Int8))
	}
	dir := t.TempDir()
	if err := SaveBundle(dir, cb, Manifest{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), `"rank": 4`, `"rank": 8`, 1)
	if doctored == string(data) {
		t.Fatal("manifest did not contain the expected rank field")
	}
	if err := os.WriteFile(mpath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	// The doctored manifest no longer matches the bundle's SHA? No — the
	// SHA covers the bundle file, not the manifest, so only the dims
	// check can catch this.
	if _, _, err := LoadBundle(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rank-mismatched manifest loaded: err=%v, want ErrCorrupt", err)
	}
}

// TestLegacyManifestWithoutDimsLoads pins the gob/JSON-additive contract:
// a manifest written before FrontEndDims existed (field absent) loads
// fine and only the structural checks apply.
func TestLegacyManifestWithoutDimsLoads(t *testing.T) {
	b, _ := trainedBundle(t, 13)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 13}); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the front_end_dims block wholesale, as an old writer would
	// never have emitted it.
	s := string(data)
	start := strings.Index(s, `"front_end_dims"`)
	if start < 0 {
		t.Fatal("manifest has no front_end_dims to strip")
	}
	end := strings.Index(s[start:], "],") + start + 2
	s = s[:start] + s[end:]
	if err := os.WriteFile(mpath, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, m, err := LoadBundle(dir); err != nil {
		t.Fatalf("legacy manifest rejected: %v", err)
	} else if len(m.FrontEndDims) != 0 {
		t.Fatalf("stripped manifest still decoded dims: %+v", m.FrontEndDims)
	}
}

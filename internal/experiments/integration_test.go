package experiments

import (
	"testing"

	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
	"repro/internal/vsm"
)

// TestAcousticPathMiniLRE is the deepest integration test: a miniature
// language-recognition evaluation where NOTHING is simulated — synthetic
// audio is rendered, two acoustic phone recognizers (GMM-HMM and hybrid
// ANN-HMM) are trained from scratch, utterances are decoded into lattices,
// expected-bigram supervectors are TFLLR-scaled, one-vs-rest SVMs are
// trained, and the pooled EER must beat chance by a wide margin. It pins
// the contract that the simulated-decoder sweeps and the real acoustic
// path share every stage downstream of the lattice.
func TestAcousticPathMiniLRE(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic path is slow")
	}
	const (
		numLangs = 3
		perLang  = 14
		testPer  = 6
		durS     = 8.0
	)
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:numLangs]
	synth := synthspeech.New()
	root := rng.New(99)

	// Two diverse acoustic front-ends, as in the paper's architecture.
	mkFE := func(kind frontend.Kind, inv int, seed uint64) *frontend.AcousticFrontEnd {
		cfg := frontend.DefaultAcousticConfig("fe", kind, inv, seed)
		cfg.TrainUtterances = 45
		cfg.UtteranceDurS = 6
		if kind != frontend.GMMHMM {
			cfg.HiddenLayers = []int{48}
			cfg.TrainEpochs = 10
		}
		fe, err := frontend.TrainAcoustic(cfg, langs)
		if err != nil {
			t.Fatal(err)
		}
		return fe
	}
	fes := []*frontend.AcousticFrontEnd{
		mkFE(frontend.GMMHMM, 20, 7),
		mkFE(frontend.ANNHMM, 20, 8),
	}

	type utt struct {
		wav   []float64
		label int
	}
	render := func(split string, li, i int) utt {
		r := root.SplitString(split).Split(uint64(li*1000 + i))
		spk := synthlang.NewSpeaker(r, li*1000+i)
		u := langs[li].Sample(r, durS, spk, synthlang.ChannelCTSClean)
		return utt{wav: synth.Render(r, u), label: li}
	}
	var train, test []utt
	for li := range langs {
		for i := 0; i < perLang; i++ {
			train = append(train, render("train", li, i))
		}
		for i := 0; i < testPer; i++ {
			test = append(test, render("test", li, i))
		}
	}

	// Per-front-end PPRVSM subsystems over real decoded audio.
	var pooled []metrics.Trial
	for _, fe := range fes {
		sv := func(wav []float64) *sparse.Vector {
			return fe.Space.Supervector(fe.DecodeAudio(wav))
		}
		var trainX []*sparse.Vector
		var trainY []int
		for _, u := range train {
			trainX = append(trainX, sv(u.wav))
			trainY = append(trainY, u.label)
		}
		tf := ngram.EstimateTFLLR(trainX, fe.Space.Dim(), 1e-5)
		for _, v := range trainX {
			tf.Apply(v)
		}
		sub := vsm.TrainSubsystem(fe.Name, trainX, trainY, numLangs, fe.Space.Dim(),
			vsm.DefaultSVMOptions())
		for _, u := range test {
			v := sv(u.wav)
			tf.Apply(v)
			for k, s := range sub.OVR.Scores(v) {
				pooled = append(pooled, metrics.Trial{Score: s, Target: k == u.label})
			}
		}
	}
	eer := metrics.EER(pooled)
	t.Logf("acoustic-path mini-LRE pooled EER = %.1f%% (chance 50%%)", eer*100)
	// Chance EER is 50 %; require a wide margin.
	if eer > 0.35 {
		t.Fatalf("acoustic-path EER %.1f%% too close to chance", eer*100)
	}
}

package experiments

import (
	"log"
	"os"
	"time"

	"repro/internal/adapt"
	"repro/internal/fusion"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/synthlang"
)

// BuildBundle assembles the serving bundle from a trained pipeline: every
// front-end's TFLLR scaler and baseline one-vs-rest SVM set, plus a
// trial-level LDA-MMI fusion backend trained on the pooled dev trials
// (one feature per front-end, class 1 = target — the same 2-class shape
// Table 4's fusion uses per duration tier). The bundle scores exactly
// like the batch pipeline: for the same supervectors, OVR decision values
// are bit-identical to Pipeline.BaselineScores.
func (p *Pipeline) BuildBundle() *persist.Bundle {
	b := &persist.Bundle{
		Languages: append([]string(nil), synthlang.LanguageNames...),
	}
	for q, fe := range p.FEs {
		b.FrontEnds = append(b.FrontEnds, persist.FrontEndModel{
			Name:      fe.Name,
			NumPhones: fe.Set.Size,
			Order:     fe.Space.Order,
			TFLLR:     p.Feats[q].TF,
			OVR:       p.Baseline[q],
		})
	}
	b.Fusion = p.fusionBackend()
	// The tier-1 cascade rides along in every exported bundle (serving
	// only uses it when -cascade is on). A pipeline that can't train one
	// (e.g. ablations without the designated front-end) just ships
	// without — a cascade-less bundle is the legacy format.
	if m, err := p.TrainCascade(); err == nil {
		b.Cascade = m
	} else {
		log.Printf("experiments: bundle ships without a cascade: %v", err)
	}
	return b
}

// fusionBackend trains (once) the bundle's trial-level fusion backend on
// the pooled dev trials — the heavy path's decision scorer, shared by
// BuildBundle and the cascade calibration/eval paths. Nil on a degenerate
// dev set (never at supported scales): the server then falls back to mean
// scores, and the cascade calibrates against that same fallback.
func (p *Pipeline) fusionBackend() *fusion.Backend {
	p.fusionMu.Lock()
	defer p.fusionMu.Unlock()
	if p.fusionTrained {
		return p.fusionBk
	}
	p.fusionTrained = true
	var devX [][]float64
	var devY []int
	for i := range p.DevLabels {
		for k := 0; k < NumLangs; k++ {
			x := make([]float64, len(p.FEs))
			for q := range p.FEs {
				x[q] = p.BaselineDev[q][i][k]
			}
			devX = append(devX, x)
			if p.DevLabels[i] == k {
				devY = append(devY, 1)
			} else {
				devY = append(devY, 0)
			}
		}
	}
	if bk, err := fusion.Train(devX, devY, 2, fusion.DefaultConfig()); err == nil {
		p.fusionBk = bk
	}
	return p.fusionBk
}

// ExportModels writes the pipeline's serving bundle plus a provenance
// manifest to dir (the cmd/lre -export-models path; cmd/lred loads the
// result).
func (p *Pipeline) ExportModels(dir, gitDescribe string) (*persist.Manifest, error) {
	sp := obs.StartSpan("export-models")
	defer sp.End()
	m := persist.Manifest{
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		Seed:        p.Seed,
		Scale:       p.Scale.String(),
		GitDescribe: gitDescribe,
	}
	// The adapt sidecar lands before the bundle, the manifest last — a
	// manifest that names AdaptFile therefore never points at a missing or
	// torn sidecar. (The compressed-export path in cmd/lre skips the
	// sidecar: int8 bundles carry no trainable weights, so they serve with
	// adaptation off.)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := adapt.SaveSet(dir, p.BuildAdaptSet()); err != nil {
		return nil, err
	}
	m.AdaptFile = adapt.SetFile
	if err := persist.SaveBundle(dir, p.BuildBundle(), m); err != nil {
		return nil, err
	}
	// Re-read what was written: the returned manifest is exactly what a
	// scoring process will see, and the round trip catches encode bugs at
	// export time rather than at serve time.
	_, out, err := persist.LoadBundle(dir)
	return out, err
}

package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/dba"
	"repro/internal/synthlang"
)

// Replay-request export (the cmd/lre -export-requests path): pooled test
// utterances written as ready-to-POST /v1/score bodies, one JSON object
// per line. Each front-end's evidence goes out as its cached TFLLR-scaled
// supervector marked scaled, so a daemon serving the matching exported
// bundle scores each line bit-identically to the offline pipeline — the
// replay file is a deterministic traffic source for smoke tests, load
// generation, and the adapt-smoke promotion drill.
//
// The local wire types mirror internal/serve's request schema (the
// export round-trip test decodes a line with the real server types).

type reqSupervector struct {
	Idx    []int32   `json:"idx"`
	Val    []float64 `json:"val"`
	Scaled bool      `json:"scaled"`
}

type reqFrontEnd struct {
	Supervector *reqSupervector `json:"supervector"`
}

type scoreRequest struct {
	ID        string                 `json:"id"`
	FrontEnds map[string]reqFrontEnd `json:"frontends"`
}

// ExportRequests writes up to n pooled test utterances (0 or negative:
// all) as replay requests. Utterances that the exported sidecar's
// calibrated Eq. 13 voting selects at threshold 1 are written first —
// a replay of the file's head therefore feeds an online adapter
// observations it will act on, which is what the promotion smoke drill
// needs — followed by the remaining pooled order. Returns how many
// requests were written and how many of them are vote-selected.
func (p *Pipeline) ExportRequests(path string, n int) (written, voted int, err error) {
	total := len(p.TestLabels)
	if n <= 0 || n > total {
		n = total
	}

	// The sidecar's calibration, exactly: pooled-dev shifts at
	// VoteCalibrationFA (BuildAdaptSet writes the same ones as
	// VoteShifts), applied to the raw baseline test scores.
	allDev := make([]int, len(p.DevLabels))
	for i := range allDev {
		allDev[i] = i
	}
	cal := make([][][]float64, len(p.FEs))
	for q := range p.FEs {
		shifts := voteShiftsForTier(p.BaselineDev[q], p.DevLabels, allDev, VoteCalibrationFA)
		cal[q] = make([][]float64, total)
		for j := 0; j < total; j++ {
			row := make([]float64, len(p.BaselineScores[q][j]))
			for k, v := range p.BaselineScores[q][j] {
				row[k] = v
				if k < len(shifts) {
					row[k] = v - shifts[k]
				}
			}
			cal[q][j] = row
		}
	}
	sel := dba.Select(dba.CountVotes(cal), 1)
	order := make([]int, 0, total)
	seen := make(map[int]bool, len(sel))
	for _, h := range sel {
		order = append(order, h.Utt)
		seen[h.Utt] = true
	}
	for j := 0; j < total; j++ {
		if !seen[j] {
			order = append(order, j)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		j := order[i]
		req := scoreRequest{
			ID:        fmt.Sprintf("replay-%04d-%s", j, synthlang.LanguageNames[p.TestLabels[j]]),
			FrontEnds: make(map[string]reqFrontEnd, len(p.FEs)),
		}
		for q, fe := range p.FEs {
			v := p.Data[q].Test[j]
			req.FrontEnds[fe.Name] = reqFrontEnd{Supervector: &reqSupervector{
				Idx:    v.Idx,
				Val:    v.Val,
				Scaled: true,
			}}
		}
		if err := enc.Encode(&req); err != nil {
			return 0, 0, err
		}
		if seen[j] {
			voted++
		}
	}
	if err := w.Flush(); err != nil {
		return 0, 0, err
	}
	return n, voted, nil
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/metrics"
)

// String renders Table 1 in the paper's layout.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: T_DBA composition vs threshold V (DBA selection)\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  V=%d    ", r.V)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "number")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-6d ", r.Size)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "error rate")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %5.2f%% ", r.ErrorRatePct)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "30s/10s/3s")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %d/%d/%d", r.ByDuration[30], r.ByDuration[10], r.ByDuration[3])
	}
	b.WriteString("\n")
	return b.String()
}

// String renders Tables 2/3 in the paper's layout: per front-end ×
// duration rows of EER and Cavg, columns baseline then V = 6…1.
func (t *TableDBA) String() string {
	var b strings.Builder
	tableNo := 2
	if t.Method.String() == "DBA-M2" {
		tableNo = 3
	}
	fmt.Fprintf(&b, "Table %d: Performance of %s per front-end (EER and Cavg in %%)\n", tableNo, t.Method)
	fmt.Fprintf(&b, "%-8s %-4s %-5s %9s", "Frontend", "Dur", "Metric", "Baseline")
	for v := 6; v >= 1; v-- {
		fmt.Fprintf(&b, "  V=%d   ", v)
	}
	b.WriteString("\n")
	for _, fe := range t.FrontEnds {
		for _, dur := range t.Durations {
			base := t.Baseline[fe][dur]
			fmt.Fprintf(&b, "%-8s %3.0fs %-5s %9.2f", fe, dur, "EER", base.EER)
			for v := 6; v >= 1; v-- {
				fmt.Fprintf(&b, " %6.2f", t.ByV[v][fe][dur].EER)
			}
			b.WriteString("\n")
			fmt.Fprintf(&b, "%-8s %3.0fs %-5s %9.2f", "", dur, "Cavg", base.Cavg)
			for v := 6; v >= 1; v-- {
				fmt.Fprintf(&b, " %6.2f", t.ByV[v][fe][dur].Cavg)
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "(best mean-EER threshold: V=%d)\n", t.BestV())
	return b.String()
}

// String renders Table 4 in the paper's layout.
func (t *Table4) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: PPRVSM vs DBA systems, (DBA-M1)+(DBA-M2), V=%d (EER/Cavg in %%)\n", t.V)
	fmt.Fprintf(&b, "%-10s %-9s", "System", "Frontend")
	for _, dur := range t.Durations {
		fmt.Fprintf(&b, "  %8.0fs     ", dur)
	}
	b.WriteString("\n")
	row := func(system, fe string, cells map[float64]Cell) {
		fmt.Fprintf(&b, "%-10s %-9s", system, fe)
		for _, dur := range t.Durations {
			c := cells[dur]
			fmt.Fprintf(&b, "  %6.2f/%-6.2f", c.EER, c.Cavg)
		}
		b.WriteString("\n")
	}
	for _, fe := range t.FrontEnds {
		row("Baseline", fe, t.BaselineSingle[fe])
	}
	row("Baseline", "fusion", t.BaselineFusion)
	for _, fe := range t.FrontEnds {
		row("DBA", fe, t.DBASingle[fe])
	}
	row("DBA", "fusion", t.DBAFusion)
	return b.String()
}

// String renders Fig. 3 as probit-scaled DET curve points suitable for
// plotting (one block per duration and system).
func (f *Fig3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: DET curves, baseline fusion vs (DBA-M1)+(DBA-M2) fusion, V=%d\n", f.V)
	fmt.Fprintf(&b, "(columns: Pfa%%  Pmiss%%  probit(Pfa)  probit(Pmiss); decimated to ≤25 points)\n")
	durs := make([]float64, 0, len(f.Curves))
	for d := range f.Curves {
		durs = append(durs, d)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(durs)))
	for _, dur := range durs {
		c := f.Curves[dur]
		writeCurve := func(name string, pts []metrics.DETPoint) {
			fmt.Fprintf(&b, "# %s %gs (EER region)\n", name, dur)
			step := len(pts)/25 + 1
			for i := 0; i < len(pts); i += step {
				pt := pts[i]
				if pt.Pfa <= 0 || pt.Pfa >= 1 || pt.Pmiss <= 0 || pt.Pmiss >= 1 {
					continue
				}
				fmt.Fprintf(&b, "%7.3f %7.3f %8.3f %8.3f\n",
					pt.Pfa*100, pt.Pmiss*100, metrics.Probit(pt.Pfa), metrics.Probit(pt.Pmiss))
			}
		}
		writeCurve("baseline-fusion", c.Baseline)
		writeCurve("dba-fusion", c.DBA)
	}
	return b.String()
}

// String renders the vote-criterion ablation.
func (a *VoteAblation) String() string {
	return fmt.Sprintf(
		"Vote-criterion ablation (V=%d):\n"+
			"  strict Eq.13 (target>0, others<0): |T_DBA|=%d, label error %.2f%%\n"+
			"  naive arg-max:                     |T_DBA|=%d, label error %.2f%%\n",
		a.V, a.StrictSize, a.StrictErrorPct, a.NaiveSize, a.NaiveErrorPct)
}

// Summary reports the headline relative EER gains of the fused DBA system
// over the fused baseline (the paper's 1.8 %, 11.72 %, 15.35 % claim).
func (t *Table4) Summary() string {
	var b strings.Builder
	b.WriteString("Headline (fused DBA vs fused baseline, relative EER reduction):\n")
	for _, dur := range corpus.Durations {
		base := t.BaselineFusion[dur].EER
		dbaE := t.DBAFusion[dur].EER
		rel := 0.0
		if base > 0 {
			rel = (base - dbaE) / base * 100
		}
		fmt.Fprintf(&b, "  %2.0fs: %.2f%% -> %.2f%%  (%.1f%% relative)\n", dur, base, dbaE, rel)
	}
	return b.String()
}

package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
	"repro/internal/sparse"
)

// TestExportRequestsRoundTrip is the replay↔serve contract: every
// exported line must decode with the real server request types, carry
// the full battery as scaled supervectors, and score bit-identically to
// the pipeline's own baseline matrix for the utterance its id names.
func TestExportRequestsRoundTrip(t *testing.T) {
	p := sharedPipeline(t)
	path := filepath.Join(t.TempDir(), "requests.jsonl")
	const n = 8
	written, voted, err := p.ExportRequests(path, n)
	if err != nil {
		t.Fatal(err)
	}
	if written != n {
		t.Fatalf("wrote %d requests, want %d", written, n)
	}
	// The head of the file is the vote-selected slice — the property the
	// adapt-smoke drill replays it for.
	if voted < 1 {
		t.Fatalf("no vote-selected requests in the first %d", n)
	}

	feIndex := make(map[string]int, len(p.FEs))
	for q, fe := range p.FEs {
		feIndex[fe.Name] = q
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<24)
	lines := 0
	for sc.Scan() {
		var req serve.ScoreRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			t.Fatalf("line %d does not decode as a serve request: %v", lines, err)
		}
		if len(req.FrontEnds) != len(p.FEs) {
			t.Fatalf("line %d carries %d front-ends, want the full battery of %d", lines, len(req.FrontEnds), len(p.FEs))
		}
		var j int
		if _, err := fmt.Sscanf(req.ID, "replay-%d", &j); err != nil {
			t.Fatalf("line %d id %q does not name an utterance: %v", lines, req.ID, err)
		}
		for name, in := range req.FrontEnds {
			q, ok := feIndex[name]
			if !ok {
				t.Fatalf("line %d names unknown front-end %q", lines, name)
			}
			if in.Supervector == nil || in.Lattice != nil {
				t.Fatalf("line %d front-end %q is not supervector evidence", lines, name)
			}
			if !in.Supervector.Scaled {
				t.Fatalf("line %d front-end %q not marked scaled", lines, name)
			}
			v := &sparse.Vector{Idx: in.Supervector.Idx, Val: in.Supervector.Val}
			if err := v.Validate(); err != nil {
				t.Fatalf("line %d front-end %q vector: %v", lines, name, err)
			}
			got := p.Baseline[q].Scores(v)
			want := p.BaselineScores[q][j]
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("line %d (utt %d) front-end %q score %d: %g != %g", lines, j, name, k, got[k], want[k])
				}
			}
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != n {
		t.Fatalf("file holds %d lines, want %d", lines, n)
	}

	// n<=0 exports the whole pooled test set.
	all := filepath.Join(t.TempDir(), "all.jsonl")
	written, _, err = p.ExportRequests(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	if written != len(p.TestLabels) {
		t.Fatalf("exported %d of %d pooled utterances", written, len(p.TestLabels))
	}
}

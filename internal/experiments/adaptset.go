package experiments

import (
	"repro/internal/adapt"
	"repro/internal/synthlang"
)

// refereeSetSize bounds the frozen referee set the canary gate rescores
// on every promotion attempt and probe — big enough to catch a torn or
// mis-trained battery, small enough to keep the probe cheap.
const refereeSetSize = 24

// BuildAdaptSet freezes everything online self-training needs from a
// trained pipeline (see adapt.Set): the training supervectors (DBA-M2's
// Tr), the pooled dev split as the holdout (labels included — the EER
// gate's frozen benchmark), per-front-end vote-calibration shifts pooled
// over all dev durations (the same ThresholdAtFA machinery the offline
// tables use, at VoteCalibrationFA), and the export-time models' pinned
// referee scores.
//
// All vectors go in verbatim from the pipeline caches — they are already
// TFLLR-scaled, which for the unprojected bundles ExportModels writes is
// exactly the scoring weight space — so a candidate retrained under M2
// with the frozen set alone reproduces the export models bit-for-bit.
func (p *Pipeline) BuildAdaptSet() *adapt.Set {
	nDev := len(p.DevLabels)
	nRef := refereeSetSize
	if nRef > nDev {
		nRef = nDev
	}
	allDev := make([]int, nDev)
	for i := range allDev {
		allDev[i] = i
	}
	devSplit := p.Corpus.AllDev()
	s := &adapt.Set{
		FormatVersion: adapt.SetFormatVersion,
		Languages:     append([]string(nil), synthlang.LanguageNames...),
		SVM:           p.SVMOptions,
		Seed:          p.Seed,
		TrainLabels:   append([]int(nil), p.TrainLabels...),
		HoldoutLabels: append([]int(nil), p.DevLabels...),
	}
	for q := range p.FEs {
		ref := make([][]float64, nRef)
		for i := 0; i < nRef; i++ {
			ref[i] = append([]float64(nil), p.BaselineDev[q][i]...)
		}
		s.FrontEnds = append(s.FrontEnds, adapt.SetFrontEnd{
			Name:          p.FEs[q].Name,
			Dim:           p.Data[q].Dim,
			Train:         p.Data[q].Train,
			Holdout:       p.Feats[q].Vectors(devSplit),
			VoteShifts:    voteShiftsForTier(p.BaselineDev[q], p.DevLabels, allDev, VoteCalibrationFA),
			RefereeScores: ref,
		})
	}
	return s
}

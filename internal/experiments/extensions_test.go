package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dba"
	"repro/internal/metrics"
	"repro/internal/synthlang"
)

func TestIterativeDBA(t *testing.T) {
	p := sharedPipeline(t)
	out := p.IterativeDBA(3, dba.M2, 3)
	if len(out.Rounds) < 1 || len(out.Rounds) > 3 {
		t.Fatalf("%d rounds", len(out.Rounds))
	}
	// Round 1 must match the single-pass memoized outcome's selection.
	single := p.DBAOutcome(3, dba.M2)
	if len(out.Rounds[0].Selected) != len(single.Selected) {
		t.Fatalf("round 1 selected %d, single pass %d",
			len(out.Rounds[0].Selected), len(single.Selected))
	}
	// Later rounds must not catastrophically degrade mean EER.
	meanOf := func(scores [][][]float64) float64 {
		var sum float64
		var n int
		for q := range scores {
			for dur := range p.TestIdx {
				eer, _ := Eval(scores[q], p.TestLabels, p.TestIdx[dur])
				sum += eer
				n++
			}
		}
		return sum / float64(n)
	}
	first := meanOf(out.Rounds[0].Scores)
	last := meanOf(out.Rounds[len(out.Rounds)-1].Scores)
	if last > first+10 {
		t.Fatalf("iteration diverged: round1 %.2f -> final %.2f", first, last)
	}
	report := p.IterativeReport(out)
	if !strings.Contains(report, "round") {
		t.Error("report broken")
	}
}

func TestSelectionStatsAtFA(t *testing.T) {
	p := sharedPipeline(t)
	// Selection error should rise (or at least not fall much) as the
	// operating point loosens, and size should respond to FA.
	tight := p.SelectionStatsAtFA(0.01, 3)
	mid := p.SelectionStatsAtFA(0.03, 3)
	if tight.Size == 0 && mid.Size == 0 {
		t.Skip("nothing selected at tiny scale")
	}
	if tight.ErrorRatePct > mid.ErrorRatePct+5 {
		t.Fatalf("tighter calibration dirtier: %.2f%% vs %.2f%%",
			tight.ErrorRatePct, mid.ErrorRatePct)
	}
	if mid.FA != 0.03 || mid.V != 3 {
		t.Fatal("stats metadata wrong")
	}
}

func TestRunOpenSet(t *testing.T) {
	p := sharedPipeline(t)
	res := RunOpenSet(p, 3, 4)
	for _, dur := range []float64{30, 10, 3} {
		closed, open := res.Closed[dur], res.Open[dur]
		if closed <= 0 && dur != 30 {
			t.Errorf("%gs closed EER %v implausible", dur, closed)
		}
		// OOS trials only add non-targets; open-set EER must not drop far
		// below closed-set (it usually rises).
		if open < closed-2 {
			t.Errorf("%gs open EER %.2f far below closed %.2f", dur, open, closed)
		}
		if fa := res.OOSFalseAlarm[dur]; fa < 0 || fa > 100 {
			t.Errorf("OOS FA %v out of range", fa)
		}
	}
	if !strings.Contains(res.String(), "Open-set") {
		t.Error("renderer broken")
	}
}

func TestFamilyPairsAreHardestConfusions(t *testing.T) {
	// The corpus's family structure (hindi/urdu, bosnian/croatian, …) must
	// surface in the *system's* behavior: pairwise detection EERs between
	// family members should be far above the average unrelated pair.
	p := sharedPipeline(t)
	var pairs []metrics.PairTrial
	for q := range p.BaselineScores {
		for _, j := range p.TestIdx[30] {
			for k, s := range p.BaselineScores[q][j] {
				pairs = append(pairs, metrics.PairTrial{Model: k, True: p.TestLabels[j], Score: s})
			}
		}
	}
	m := metrics.PairwiseEER(pairs, NumLangs)
	idx := map[string]int{}
	for i, n := range synthlang.LanguageNames {
		idx[n] = i
	}
	family := [][2]string{
		{"hindi", "urdu"}, {"bosnian", "croatian"}, {"dari", "farsi"},
		{"russian", "ukrainian"}, {"cantonese", "mandarin"},
	}
	var famSum float64
	var famN int
	for _, f := range family {
		a, b := idx[f[0]], idx[f[1]]
		if !math.IsNaN(m[a][b]) {
			famSum += m[a][b]
			famN++
		}
		if !math.IsNaN(m[b][a]) {
			famSum += m[b][a]
			famN++
		}
	}
	var allSum float64
	var allN int
	for a := 0; a < NumLangs; a++ {
		for b := 0; b < NumLangs; b++ {
			if a != b && !math.IsNaN(m[a][b]) {
				allSum += m[a][b]
				allN++
			}
		}
	}
	famMean := famSum / float64(famN)
	allMean := allSum / float64(allN)
	t.Logf("family-pair mean EER %.1f%% vs all-pair mean %.1f%%", famMean*100, allMean*100)
	if famMean < 1.5*allMean {
		t.Fatalf("family pairs (%.3f) not clearly harder than average pair (%.3f)", famMean, allMean)
	}
}

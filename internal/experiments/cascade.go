package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/cascade"
	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// CascadeFrontEnd is the designated tier-1 front-end: the paper's
// best-performing single recognizer (Table 2), so its 1-best stream gives
// the cheap tier the best shot at a clean margin.
const CascadeFrontEnd = "HU"

// TierNameFor renders a duration tier's name ("30s", "10s", "3s") — the
// keys the cascade policy and BENCH_cascade.json use.
func TierNameFor(dur float64) string { return fmt.Sprintf("%gs", dur) }

// TierNames lists the duration tiers longest-first, matching
// corpus.Durations and the cascade model's tier order.
func TierNames() []string {
	names := make([]string, len(corpus.Durations))
	for i, dur := range corpus.Durations {
		names[i] = TierNameFor(dur)
	}
	return names
}

// cascadeSeqs caches the designated front-end's 1-best decodes, aligned
// with the pipeline's split orders (train split order; pooled dev/test
// order). Decoding reuses the exact per-utterance rng streams of
// vsm.Extract — (seed, front-end name, item ID) — so the 1-best strings
// come from the very lattices the supervectors were extracted from.
type cascadeSeqs struct {
	Train [][]int
	Dev   [][]int
	Test  [][]int
}

func (p *Pipeline) cascadeFE() (*frontend.FrontEnd, error) {
	for _, fe := range p.FEs {
		if fe.Name == CascadeFrontEnd {
			return fe, nil
		}
	}
	return nil, fmt.Errorf("experiments: pipeline has no front-end %q", CascadeFrontEnd)
}

func decode1Best(fe *frontend.FrontEnd, root *rng.RNG, items []*corpus.Item) [][]int {
	out := make([][]int, len(items))
	parallel.ForPool("cascade.decode", len(items), func(i int) {
		it := items[i]
		r := root.Split(uint64(it.ID))
		lat := fe.Decode(r, it.U)
		out[i], _ = lat.BestPath()
	})
	return out
}

func (p *Pipeline) cascadeSeqsOnce() (*cascadeSeqs, error) {
	p.cascadeMu.Lock()
	defer p.cascadeMu.Unlock()
	if p.cascadeSeq != nil {
		return p.cascadeSeq, nil
	}
	fe, err := p.cascadeFE()
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan("cascade.decode-1best")
	defer sp.End()
	sp.SetLabel("frontend", fe.Name)
	root := rng.New(p.Seed).SplitString("extract:" + fe.Name)
	p.cascadeSeq = &cascadeSeqs{
		Train: decode1Best(fe, root, p.Corpus.Train.Items),
		Dev:   decode1Best(fe, root, p.Corpus.AllDev().Items),
		Test:  decode1Best(fe, root, p.Corpus.AllTest().Items),
	}
	return p.cascadeSeq, nil
}

// heavyDecisionScores computes the heavy path's decision matrix for a
// pooled score set: the fusion backend's target log-odds when the bundle
// fuses, else the mean across front-ends (mirroring serve.AssembleResult's
// fallback).
func (p *Pipeline) heavyDecisionScores(perFE [][][]float64) [][]float64 {
	bk := p.fusionBackend()
	n := len(perFE[0])
	out := make([][]float64, n)
	x := make([]float64, len(perFE))
	for j := 0; j < n; j++ {
		row := make([]float64, NumLangs)
		for k := 0; k < NumLangs; k++ {
			if bk != nil {
				for q := range perFE {
					x[q] = perFE[q][j][k]
				}
				row[k] = bk.Score(x)[1]
			} else {
				for q := range perFE {
					row[k] += perFE[q][j][k] / float64(len(perFE))
				}
			}
		}
		out[j] = row
	}
	return out
}

// TrainCascade fits and calibrates the tier-1 cascade model on the
// pipeline's train/dev splits: per-language Kneser–Ney bigrams over the
// designated front-end's 1-best decodes, per-tier required margins at the
// default accuracy target, and the affine map onto the heavy fused-score
// scale. Memoized — BuildBundle and the eval/bench paths share one model.
func (p *Pipeline) TrainCascade() (*cascade.Model, error) {
	p.cascadeModelMu.Lock()
	defer p.cascadeModelMu.Unlock()
	if p.cascadeModel != nil {
		return p.cascadeModel, nil
	}
	seqs, err := p.cascadeSeqsOnce()
	if err != nil {
		return nil, err
	}
	fe, err := p.cascadeFE()
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan("cascade.train")
	defer sp.End()
	trainSeqs := make([][][]int, NumLangs)
	for i, it := range p.Corpus.Train.Items {
		trainSeqs[it.Label] = append(trainSeqs[it.Label], seqs.Train[i])
	}
	heavyDev := p.heavyDecisionScores(p.BaselineDev)
	var dev []cascade.DevExample
	for ti, dur := range corpus.Durations {
		for _, i := range p.DevIdx[dur] {
			dev = append(dev, cascade.DevExample{
				Seq:   seqs.Dev[i],
				Label: p.DevLabels[i],
				Tier:  ti,
				Heavy: heavyDev[i],
			})
		}
	}
	m, err := cascade.Train(fe.Name, fe.Set.Size, trainSeqs, TierNames(), dev, cascade.TrainConfig{})
	if err != nil {
		return nil, err
	}
	p.cascadeModel = m
	return m, nil
}

// CascadeTierEval is one (duration tier, threshold offset) operating
// point of the cascade on the pipeline's test split.
type CascadeTierEval struct {
	Tier string `json:"tier"`
	// Threshold is the offset as a Go float string ("-Inf", "0", "0.05"):
	// encoding/json cannot represent ±Inf, and the endpoints are the most
	// important points of the curve.
	Threshold string `json:"threshold"`
	Total     int    `json:"total"`
	Exited    int     `json:"exited"`
	// ExitFrac is the traffic fraction answered at tier 1.
	ExitFrac float64 `json:"exit_frac"`
	// Tier1AccPct is the argmax accuracy of the exited subset (100 when
	// nothing exits, by convention: an empty fast path is vacuously
	// correct).
	Tier1AccPct float64 `json:"tier1_acc_pct"`
	// EERHeavyPct / EERCascadePct are the detection EERs of the pure
	// heavy path and of the mixed (tier-1-where-exited) score set.
	EERHeavyPct   float64 `json:"eer_heavy_pct"`
	EERCascadePct float64 `json:"eer_cascade_pct"`
	// EERDeltaPct is cascade − heavy (positive = the fast path costs
	// accuracy).
	EERDeltaPct float64 `json:"eer_delta_pct"`
}

// evalCascadeTier evaluates one duration tier under a threshold offset.
func (p *Pipeline) evalCascadeTier(m *cascade.Model, seqs *cascadeSeqs, heavy [][]float64, ti int, threshold float64) CascadeTierEval {
	dur := corpus.Durations[ti]
	idx := p.TestIdx[dur]
	ev := CascadeTierEval{
		Tier:        TierNameFor(dur),
		Threshold:   strconv.FormatFloat(threshold, 'g', -1, 64),
		Total:       len(idx),
		Tier1AccPct: 100,
	}
	var pairs []metrics.PairTrial
	correct := 0
	for _, j := range idx {
		row := heavy[j]
		d := m.Decide(seqs.Test[j], threshold)
		if d.Exit {
			ev.Exited++
			row = d.Scores
			if d.Best == p.TestLabels[j] {
				correct++
			}
		}
		for k, s := range row {
			pairs = append(pairs, metrics.PairTrial{Model: k, True: p.TestLabels[j], Score: s})
		}
	}
	if ev.Total > 0 {
		ev.ExitFrac = float64(ev.Exited) / float64(ev.Total)
	}
	if ev.Exited > 0 {
		ev.Tier1AccPct = 100 * float64(correct) / float64(ev.Exited)
	}
	ev.EERCascadePct = 100 * metrics.EER(metrics.PairTrialsToDetection(pairs))
	heavyEER, _ := Eval(heavy, p.TestLabels, idx)
	ev.EERHeavyPct = heavyEER
	ev.EERDeltaPct = ev.EERCascadePct - ev.EERHeavyPct
	return ev
}

// EvalCascade evaluates every duration tier at one policy (per-tier
// threshold offsets), against the heavy path's fused test scores.
func (p *Pipeline) EvalCascade(m *cascade.Model, pol cascade.Policy) ([]CascadeTierEval, error) {
	seqs, err := p.cascadeSeqsOnce()
	if err != nil {
		return nil, err
	}
	heavy := p.heavyDecisionScores(p.BaselineScores)
	out := make([]CascadeTierEval, len(corpus.Durations))
	for ti, dur := range corpus.Durations {
		out[ti] = p.evalCascadeTier(m, seqs, heavy, ti, pol.Threshold(TierNameFor(dur)))
	}
	return out, nil
}

// CascadeSweepThresholds is the offset grid of the tradeoff curve:
// −Inf (escalate all — the bit-identity referee's operating point) through
// the calibrated region to +Inf (everything exits). Offsets are in margin
// units (per-phone LLR gap).
var CascadeSweepThresholds = []float64{
	math.Inf(-1), -0.2, -0.1, -0.05, -0.02,
	0, 0.02, 0.05, 0.1, 0.2, 0.4, math.Inf(1),
}

// SweepCascade evaluates every tier across the full threshold grid — the
// accuracy/latency/traffic-fraction tradeoff curve of BENCH_cascade.json.
func (p *Pipeline) SweepCascade(m *cascade.Model) ([]CascadeTierEval, error) {
	seqs, err := p.cascadeSeqsOnce()
	if err != nil {
		return nil, err
	}
	heavy := p.heavyDecisionScores(p.BaselineScores)
	var out []CascadeTierEval
	for ti := range corpus.Durations {
		for _, th := range CascadeSweepThresholds {
			out = append(out, p.evalCascadeTier(m, seqs, heavy, ti, th))
		}
	}
	return out, nil
}

// CascadeThroughput is the measured serving-cost comparison for one
// duration tier: the heavy path (supervector extraction + TFLLR + OVR
// for every front-end + fusion — what the server runs per request) vs the
// cascade (tier-1 1-best scoring for all, heavy only for escalations).
// Decoding is excluded on both sides: clients supply lattices.
type CascadeThroughput struct {
	Tier     string  `json:"tier"`
	Requests int     `json:"requests"`
	ExitFrac float64 `json:"exit_frac"`
	// HeavyUttPerSec / CascadeUttPerSec are single-threaded scoring
	// throughputs over the tier's test utterances.
	HeavyUttPerSec   float64 `json:"heavy_utt_per_sec"`
	CascadeUttPerSec float64 `json:"cascade_utt_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// BenchCascadeTier measures one tier's throughput at a threshold offset.
// Lattices are pre-decoded (untimed); both loops run single-threaded so
// the ratio prices work, not scheduling.
func (p *Pipeline) BenchCascadeTier(m *cascade.Model, ti int, threshold float64) (CascadeThroughput, error) {
	dur := corpus.Durations[ti]
	items := p.Corpus.Test[dur].Items
	tp := CascadeThroughput{Tier: TierNameFor(dur), Requests: len(items)}

	// Pre-decode every front-end's lattice for the tier (the client-side
	// cost in serving, excluded from both timings).
	lats := make([][]*lattice.Lattice, len(p.FEs))
	for q, fe := range p.FEs {
		lats[q] = make([]*lattice.Lattice, len(items))
		root := rng.New(p.Seed).SplitString("extract:" + fe.Name)
		parallel.ForPool("cascade.bench.decode", len(items), func(i int) {
			lats[q][i] = fe.Decode(root.Split(uint64(items[i].ID)), items[i].U)
		})
	}
	desigQ := -1
	for q, fe := range p.FEs {
		if fe.Name == m.FrontEnd {
			desigQ = q
		}
	}
	if desigQ < 0 {
		return tp, fmt.Errorf("experiments: bench has no front-end %q", m.FrontEnd)
	}
	bk := p.fusionBackend()

	heavyScore := func(i int) []float64 {
		x := make([]float64, len(p.FEs))
		rows := make([][]float64, len(p.FEs))
		for q := range p.FEs {
			v := p.FEs[q].Space.Supervector(lats[q][i])
			if p.Feats[q].TF != nil {
				p.Feats[q].TF.Apply(v)
			}
			rows[q] = p.Baseline[q].Scores(v)
		}
		fused := make([]float64, NumLangs)
		for k := 0; k < NumLangs; k++ {
			for q := range rows {
				x[q] = rows[q][k]
			}
			if bk != nil {
				fused[k] = bk.Score(x)[1]
			}
		}
		return fused
	}

	start := time.Now()
	for i := range items {
		heavyScore(i)
	}
	heavySec := time.Since(start).Seconds()

	exited := 0
	start = time.Now()
	for i := range items {
		seq, _ := lats[desigQ][i].BestPath()
		d := m.Decide(seq, threshold)
		if d.Exit {
			exited++
		} else {
			heavyScore(i)
		}
	}
	cascadeSec := time.Since(start).Seconds()

	if len(items) > 0 {
		tp.ExitFrac = float64(exited) / float64(len(items))
		tp.HeavyUttPerSec = float64(len(items)) / heavySec
		tp.CascadeUttPerSec = float64(len(items)) / cascadeSec
	}
	if cascadeSec > 0 {
		tp.Speedup = heavySec / cascadeSec
	}
	return tp, nil
}

// CascadeBench is the committed BENCH_cascade.json payload.
type CascadeBench struct {
	Scale     string `json:"scale"`
	Seed      uint64 `json:"seed"`
	FrontEnd  string `json:"front_end"`
	Policy    string `json:"policy"`
	CreatedAt string `json:"created_at,omitempty"`
	// Default holds every tier's operating point at the default policy;
	// Curve the full threshold sweep; Throughput the measured per-tier
	// serving-cost comparison at the default policy.
	Default    []CascadeTierEval   `json:"default"`
	Curve      []CascadeTierEval   `json:"curve"`
	Throughput []CascadeThroughput `json:"throughput"`
}

// RunCascadeBench trains the cascade (if needed), sweeps the threshold
// grid, and measures per-tier throughput at the given policy.
func (p *Pipeline) RunCascadeBench(pol cascade.Policy) (*CascadeBench, error) {
	m, err := p.TrainCascade()
	if err != nil {
		return nil, err
	}
	def, err := p.EvalCascade(m, pol)
	if err != nil {
		return nil, err
	}
	curve, err := p.SweepCascade(m)
	if err != nil {
		return nil, err
	}
	bench := &CascadeBench{
		Scale:    p.Scale.String(),
		Seed:     p.Seed,
		FrontEnd: m.FrontEnd,
		Policy:   pol.String(),
		Default:  def,
		Curve:    curve,
	}
	for ti := range corpus.Durations {
		tp, err := p.BenchCascadeTier(m, ti, pol.Threshold(TierNameFor(corpus.Durations[ti])))
		if err != nil {
			return nil, err
		}
		bench.Throughput = append(bench.Throughput, tp)
	}
	return bench, nil
}

// CascadeTable is the golden-pinned tradeoff table: one row per duration
// tier at the default threshold.
type CascadeTable struct {
	FrontEnd string
	Rows     []CascadeTierEval
}

// RunCascadeTable trains the cascade and evaluates the default policy
// (offset 0 — the calibrated per-tier margins as-is).
func (p *Pipeline) RunCascadeTable() (*CascadeTable, error) {
	m, err := p.TrainCascade()
	if err != nil {
		return nil, err
	}
	rows, err := p.EvalCascade(m, cascade.Policy{})
	if err != nil {
		return nil, err
	}
	return &CascadeTable{FrontEnd: m.FrontEnd, Rows: rows}, nil
}

// String renders the golden-pinned layout.
func (t *CascadeTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cascade: tier-1 tradeoff at the default threshold (front-end %s)\n", t.FrontEnd)
	fmt.Fprintf(&b, "%-5s %8s %10s %10s %12s %8s\n", "Dur", "Exit%", "Tier1Acc%", "EERheavy", "EERcascade", "dEER")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-5s %7.2f%% %9.2f%% %10.2f %12.2f %8.2f\n",
			r.Tier, 100*r.ExitFrac, r.Tier1AccPct, r.EERHeavyPct, r.EERCascadePct, r.EERDeltaPct)
	}
	return b.String()
}


package experiments

import "testing"

// TestScaleRoundTrip pins String/ParseScale as exact inverses over every
// defined scale, plus the error paths.
func TestScaleRoundTrip(t *testing.T) {
	scales := []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleFull}
	names := []string{"tiny", "small", "medium", "full"}
	for i, s := range scales {
		if got := s.String(); got != names[i] {
			t.Errorf("Scale(%d).String() = %q, want %q", int(s), got, names[i])
		}
		back, err := ParseScale(s.String())
		if err != nil {
			t.Errorf("ParseScale(%q) failed: %v", s.String(), err)
		}
		if back != s {
			t.Errorf("round trip broke: %v → %q → %v", s, s.String(), back)
		}
	}
	for _, bad := range []string{"", "TINY", "huge", "tiny "} {
		if _, err := ParseScale(bad); err == nil {
			t.Errorf("ParseScale(%q) accepted an unknown scale", bad)
		}
	}
	// Out-of-range values must still render something stable.
	if got := Scale(99).String(); got != "Scale(99)" {
		t.Errorf("unknown scale renders %q", got)
	}
}

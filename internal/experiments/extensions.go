package experiments

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/svm"
)

// IterativeDBA runs the multi-round DBA extension (see dba.RunIterative)
// with per-round vote recalibration: after each round the retrained
// subsystems are rescored on the dev set and fresh per-duration vote
// thresholds are derived, exactly as the first round's calibration was.
func (p *Pipeline) IterativeDBA(v int, method dba.Method, rounds int) *dba.IterativeOutcome {
	cfg := dba.IterativeConfig{
		Config: dba.Config{
			Threshold:  v,
			Method:     method,
			NumLangs:   NumLangs,
			SVMOptions: p.SVMOptions,
		},
		Rounds:       rounds,
		StopOnStable: true,
		Checkpoint:   p.ck.roundCheckpoint(v, method),
	}
	recal := func(models []*svm.OneVsRest, scores [][][]float64) [][][]float64 {
		dev := p.DevScores(models)
		out := make([][][]float64, len(scores))
		for q, mat := range scores {
			out[q] = make([][]float64, len(mat))
			for _, dur := range corpus.Durations {
				shifts := voteShiftsForTier(dev[q], p.DevLabels, p.DevIdx[dur], VoteCalibrationFA)
				for _, j := range p.TestIdx[dur] {
					row := mat[j]
					nr := make([]float64, len(row))
					for k, val := range row {
						nr[k] = val - shifts[k]
					}
					out[q][j] = nr
				}
			}
		}
		return out
	}
	return dba.RunIterative(p.Data, p.TrainLabels, p.Baseline, p.VoteScores, cfg, recal)
}

// IterativeReport summarizes an iterative run: per-round selection size,
// label error, and mean EER across subsystems and durations.
func (p *Pipeline) IterativeReport(out *dba.IterativeOutcome) string {
	var b strings.Builder
	b.WriteString("Iterated DBA (extension — the paper runs one round):\n")
	b.WriteString("round  |T_DBA|  label-err%   mean EER%\n")
	for _, rr := range out.Rounds {
		var sum float64
		var n int
		for q := range rr.Scores {
			for _, dur := range corpus.Durations {
				eer, _ := Eval(rr.Scores[q], p.TestLabels, p.TestIdx[dur])
				sum += eer
				n++
			}
		}
		fmt.Fprintf(&b, "%5d  %7d  %9.2f  %9.2f\n",
			rr.Round, len(rr.Selected),
			dba.SelectionErrorRate(rr.Selected, p.TestLabels)*100,
			sum/float64(n))
	}
	if out.Stable {
		b.WriteString("selection reached a fixed point\n")
	}
	return b.String()
}

// SelectionStats reports T_DBA size and label error for a vote-calibration
// false-alarm operating point — the FA-sweep ablation: the paper's Table 1
// trade-off moves along this axis too.
type SelectionStats struct {
	FA           float64
	V            int
	Size         int
	ErrorRatePct float64
}

// SelectionStatsAtFA recomputes vote thresholds at an arbitrary dev
// false-alarm rate (reusing the cached baseline scores; no retraining).
func (p *Pipeline) SelectionStatsAtFA(fa float64, v int) SelectionStats {
	voteScores := make([][][]float64, len(p.BaselineScores))
	for q, mat := range p.BaselineScores {
		voteScores[q] = make([][]float64, len(mat))
		for _, dur := range corpus.Durations {
			shifts := voteShiftsForTier(p.BaselineDev[q], p.DevLabels, p.DevIdx[dur], fa)
			for _, j := range p.TestIdx[dur] {
				row := mat[j]
				nr := make([]float64, len(row))
				for k, val := range row {
					nr[k] = val - shifts[k]
				}
				voteScores[q][j] = nr
			}
		}
	}
	sel := dba.Select(dba.CountVotes(voteScores), v)
	return SelectionStats{
		FA:           fa,
		V:            v,
		Size:         len(sel),
		ErrorRatePct: dba.SelectionErrorRate(sel, p.TestLabels) * 100,
	}
}

// SubsystemVoteCounts returns M_n of Eq. 15: the number of test utterances
// for which subsystem n's Eq. 13 vote criterion fired on the calibrated
// baseline scores.
func (p *Pipeline) SubsystemVoteCounts() []int {
	counts := make([]int, len(p.VoteScores))
	for q, mat := range p.VoteScores {
		for _, row := range mat {
			if dba.Vote(row) >= 0 {
				counts[q]++
			}
		}
	}
	return counts
}

package experiments

import (
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/obs"
	"repro/internal/svm"
	"repro/internal/vsm"
)

// Checkpointer wires a checkpoint.Store into the pipeline's phase
// boundaries. All methods are nil-receiver-safe, so pipeline code calls
// them unconditionally; a nil Checkpointer (or nil Store) is a no-op and
// the run behaves exactly as before checkpointing existed.
//
// Load failures are never fatal: a missing, corrupt, or shape-mismatched
// entry logs, bumps checkpoint.recompute, and the phase recomputes from
// scratch. Save failures (I/O errors) log and bump checkpoint.save_failed
// without stopping the run — a checkpoint is an optimization, not a
// dependency. Injected crashes (panic-kind faults at the checkpoint.save
// sites) do propagate, which is how the kill-and-resume tests simulate
// dying mid-save.
type Checkpointer struct {
	Store *checkpoint.Store
	// Every thins per-round DBA checkpoints: only rounds with
	// (round−1) mod Every == 0 are saved. ≤ 1 saves every round.
	// Phase-boundary checkpoints (features, baseline, DBA outcomes,
	// Table 4) are always saved.
	Every int
}

func (c *Checkpointer) enabled() bool { return c != nil && c.Store != nil }

// load restores key into v, reporting whether v now holds a verified
// checkpoint. Any failure is logged and counted, never propagated.
func (c *Checkpointer) load(key string, v any) bool {
	if !c.enabled() || !c.Store.Has(key) {
		return false
	}
	if err := c.Store.Load(key, v); err != nil {
		log.Printf("experiments: checkpoint %q unusable, recomputing: %v", key, err)
		obs.Inc("checkpoint.recompute")
		return false
	}
	return true
}

// save persists v under key, logging (not failing) on I/O errors.
func (c *Checkpointer) save(key string, v any) {
	if !c.enabled() {
		return
	}
	if err := c.Store.Save(key, v); err != nil {
		log.Printf("experiments: checkpoint save %q failed (run continues): %v", key, err)
		obs.Inc("checkpoint.save_failed")
	}
}

// scoresSnap checkpoints the baseline scoring phase: raw test and dev
// score matrices. VoteScores are derived (calibration is deterministic
// arithmetic over these), so they are recomputed on resume rather than
// stored.
type scoresSnap struct {
	Test [][][]float64
	Dev  [][][]float64
}

// dbaSnap is the slim checkpoint of one dba.Run outcome. Votes and the
// echoed first-pass scores are recomputed from the pipeline's VoteScores
// (bit-identical: CountVotes is integer tallying over the same floats),
// so only the pass's real products are stored. Scores is captured after
// the pipeline's empty-selection adjustment.
type dbaSnap struct {
	Selected  []dba.Hypothesis
	Retrained []*svm.OneVsRest
	Scores    [][][]float64
}

// iterRoundSnap checkpoints one completed boosting round of the
// iterative-DBA extension.
type iterRoundSnap struct {
	Result dba.RoundResult
	Models []*svm.OneVsRest
}

// roundCheckpoint adapts the Checkpointer to dba.RoundCheckpoint for one
// (threshold, method) iterative run; nil when checkpointing is off.
func (c *Checkpointer) roundCheckpoint(v int, method dba.Method) dba.RoundCheckpoint {
	if !c.enabled() {
		return nil
	}
	return &iterCheckpoint{ck: c, prefix: fmt.Sprintf("dba-iter-v%d-%s", v, method)}
}

type iterCheckpoint struct {
	ck     *Checkpointer
	prefix string
}

func (ic *iterCheckpoint) key(round int) string {
	return fmt.Sprintf("%s-round-%03d", ic.prefix, round)
}

func (ic *iterCheckpoint) LoadRound(round int) (*dba.RoundResult, []*svm.OneVsRest, bool) {
	var snap iterRoundSnap
	if !ic.ck.load(ic.key(round), &snap) {
		return nil, nil, false
	}
	if snap.Result.Round != round || len(snap.Models) == 0 {
		log.Printf("experiments: checkpoint %q is not round %d, recomputing", ic.key(round), round)
		obs.Inc("checkpoint.recompute")
		return nil, nil, false
	}
	return &snap.Result, snap.Models, true
}

func (ic *iterCheckpoint) SaveRound(round int, rr *dba.RoundResult, models []*svm.OneVsRest) {
	every := ic.ck.Every
	if every < 1 {
		every = 1
	}
	if (round-1)%every != 0 {
		return
	}
	ic.ck.save(ic.key(round), &iterRoundSnap{Result: *rr, Models: models})
}

// featuresCover reports whether a restored feature cache holds a
// supervector for every utterance of every split — the shape check that
// guards against resuming a checkpoint from a differently-sized corpus
// that happens to share metadata.
func featuresCover(f *vsm.Features, c *corpus.Corpus) bool {
	splits := []*corpus.Split{c.Train}
	for _, dur := range corpus.Durations {
		splits = append(splits, c.Dev[dur], c.Test[dur])
	}
	for _, s := range splits {
		for _, it := range s.Items {
			if !f.Has(it.ID) {
				return false
			}
		}
	}
	return true
}

package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/fusion"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/svm"
)

// Cell is one EER/Cavg measurement in percent.
type Cell struct {
	EER, Cavg float64
}

// Table1 reproduces paper Table 1: the composition of T_DBA as the vote
// threshold V varies.
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one threshold setting.
type Table1Row struct {
	V    int
	Size int
	// ByDuration counts selected utterances per tier.
	ByDuration map[float64]int
	// ErrorRatePct is the label error of the selection against truth.
	ErrorRatePct float64
}

// RunTable1 sweeps V = 6…1 over the baseline votes.
func RunTable1(p *Pipeline) *Table1 {
	votes := dba.CountVotes(p.VoteScores)
	t := &Table1{}
	for v := 6; v >= 1; v-- {
		sel := dba.Select(votes, v)
		row := Table1Row{
			V:            v,
			Size:         len(sel),
			ByDuration:   make(map[float64]int),
			ErrorRatePct: dba.SelectionErrorRate(sel, p.TestLabels) * 100,
		}
		durOf := make(map[int]float64)
		for _, dur := range corpus.Durations {
			for _, j := range p.TestIdx[dur] {
				durOf[j] = dur
			}
		}
		for _, h := range sel {
			row.ByDuration[durOf[h.Utt]]++
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableDBA reproduces paper Tables 2 (DBA-M1) and 3 (DBA-M2): per
// front-end × duration EER/Cavg for the baseline and every threshold V.
type TableDBA struct {
	Method    dba.Method
	FrontEnds []string
	Durations []float64
	// Baseline[fe][dur] and ByV[v][fe][dur].
	Baseline map[string]map[float64]Cell
	ByV      map[int]map[string]map[float64]Cell
}

// RunTableDBA sweeps V for one method. Outcomes are memoized on the
// pipeline, so running both tables shares every DBA pass with Table 4.
func RunTableDBA(p *Pipeline, method dba.Method) *TableDBA {
	t := &TableDBA{
		Method:    method,
		Durations: corpus.Durations,
		Baseline:  make(map[string]map[float64]Cell),
		ByV:       make(map[int]map[string]map[float64]Cell),
	}
	for q, d := range p.Data {
		t.FrontEnds = append(t.FrontEnds, d.Name)
		t.Baseline[d.Name] = make(map[float64]Cell)
		for _, dur := range corpus.Durations {
			eer, cavg := Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])
			t.Baseline[d.Name][dur] = Cell{EER: eer, Cavg: cavg}
		}
	}
	for v := 6; v >= 1; v-- {
		o := p.DBAOutcome(v, method)
		byFE := make(map[string]map[float64]Cell)
		for q, d := range p.Data {
			byFE[d.Name] = make(map[float64]Cell)
			for _, dur := range corpus.Durations {
				eer, cavg := Eval(o.Scores[q], p.TestLabels, p.TestIdx[dur])
				byFE[d.Name][dur] = Cell{EER: eer, Cavg: cavg}
			}
		}
		t.ByV[v] = byFE
	}
	return t
}

// BestV returns the threshold minimizing the mean EER across front-ends
// and durations (the paper reports V = 3 as the optimum).
func (t *TableDBA) BestV() int {
	bestV, bestMean := 0, 0.0
	for v, byFE := range t.ByV {
		var sum float64
		var n int
		for _, byDur := range byFE {
			for _, c := range byDur {
				sum += c.EER
				n++
			}
		}
		mean := sum / float64(n)
		if bestV == 0 || mean < bestMean {
			bestV, bestMean = v, mean
		}
	}
	return bestV
}

// Table4 reproduces paper Table 4: baseline vs DBA per front-end plus the
// LDA-MMI fusion of all subsystems, at V = 3 with (DBA-M1)+(DBA-M2).
type Table4 struct {
	Durations []float64
	FrontEnds []string
	// BaselineSingle[fe][dur], DBASingle[fe][dur] (M1+M2 fused per FE).
	BaselineSingle map[string]map[float64]Cell
	DBASingle      map[string]map[float64]Cell
	// BaselineFusion[dur], DBAFusion[dur] across all subsystems.
	BaselineFusion map[float64]Cell
	DBAFusion      map[float64]Cell
	// V is the threshold used (3 in the paper).
	V int
}

// fusePerDuration trains per-duration LDA-MMI backends on dev scores and
// returns the fused test score matrix over the pooled test order.
//
// Fusion operates at the detection-trial level: every (utterance, language)
// pair becomes one trial whose feature vector collects the Q subsystems'
// scores for that pair (scaled by the Eq. 15 subsystem weights), and the
// backend discriminates target from non-target trials — LDA projection
// followed by an MMI-refined Gaussian backend, scored as target log-odds.
// This is the small-sample-sound form of the paper's Eq. 14–15 backend:
// with K = 23 and Q·K-dimensional per-utterance stacks, a per-language
// Gaussian backend needs far more development data than the corpus scales
// this repository runs (the paper had 22,701 dev conversations).
func (p *Pipeline) fusePerDuration(devMats, testMats [][][]float64, weights []float64) [][]float64 {
	q := len(devMats)
	if weights == nil {
		weights = make([]float64, q)
		for i := range weights {
			weights[i] = 1
		}
	}
	trialFeat := func(mats [][][]float64, j, k int) []float64 {
		x := make([]float64, q)
		for s := 0; s < q; s++ {
			x[s] = weights[s] * mats[s][j][k]
		}
		return x
	}
	fused := make([][]float64, len(testMats[0]))
	for _, dur := range corpus.Durations {
		var devX [][]float64
		var devY []int
		for _, i := range p.DevIdx[dur] {
			for k := 0; k < NumLangs; k++ {
				devX = append(devX, trialFeat(devMats, i, k))
				if p.DevLabels[i] == k {
					devY = append(devY, 1)
				} else {
					devY = append(devY, 0)
				}
			}
		}
		cfg := fusion.DefaultConfig()
		b, err := fusion.Train(devX, devY, 2, cfg)
		if err != nil {
			// Degenerate dev tier: fall back to the weighted mean score
			// (never happens at supported scales, but keeps the harness
			// total).
			for _, j := range p.TestIdx[dur] {
				row := make([]float64, NumLangs)
				for k := range row {
					f := trialFeat(testMats, j, k)
					var s float64
					for _, v := range f {
						s += v
					}
					row[k] = s / float64(q)
				}
				fused[j] = row
			}
			continue
		}
		for _, j := range p.TestIdx[dur] {
			row := make([]float64, NumLangs)
			for k := range row {
				row[k] = b.Score(trialFeat(testMats, j, k))[1]
			}
			fused[j] = row
		}
	}
	return fused
}

// evalFused computes EER/Cavg per duration of a fused pooled score matrix.
func (p *Pipeline) evalFused(fused [][]float64) map[float64]Cell {
	out := make(map[float64]Cell)
	for _, dur := range corpus.Durations {
		eer, cavg := Eval(fused, p.TestLabels, p.TestIdx[dur])
		out[dur] = Cell{EER: eer, Cavg: cavg}
	}
	return out
}

// RunTable4 assembles the fusion comparison at threshold v (paper: 3).
// The finished table is checkpointed whole — fusion training is the last
// expensive phase, so a resumed run that died after it replays nothing.
func RunTable4(p *Pipeline, v int) *Table4 {
	ckKey := fmt.Sprintf("table4-v%d", v)
	var cached Table4
	if p.ck.load(ckKey, &cached) && cached.V == v {
		obs.Inc("checkpoint.table4.restored")
		return &cached
	}
	t := &Table4{
		Durations:      corpus.Durations,
		V:              v,
		BaselineSingle: make(map[string]map[float64]Cell),
		DBASingle:      make(map[string]map[float64]Cell),
	}
	for q, d := range p.Data {
		t.FrontEnds = append(t.FrontEnds, d.Name)
		t.BaselineSingle[d.Name] = make(map[float64]Cell)
		for _, dur := range corpus.Durations {
			eer, cavg := Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])
			t.BaselineSingle[d.Name][dur] = Cell{EER: eer, Cavg: cavg}
		}
	}

	m1 := p.DBAOutcome(v, dba.M1)
	m2 := p.DBAOutcome(v, dba.M2)
	devM1 := p.DevScores(m1.Retrained)
	devM2 := p.DevScores(m2.Retrained)

	// Per-front-end DBA rows: LDA-MMI fusion of that front-end's M1 and
	// M2 second-pass scores.
	for q, d := range p.Data {
		devMats := [][][]float64{devM1[q], devM2[q]}
		testMats := [][][]float64{m1.Scores[q], m2.Scores[q]}
		fused := p.fusePerDuration(devMats, testMats, nil)
		t.DBASingle[d.Name] = p.evalFused(fused)
	}

	// Baseline fusion: all six baseline subsystems.
	t.BaselineFusion = p.evalFused(p.fusePerDuration(p.BaselineDev, p.BaselineScores, nil))

	// DBA fusion: all twelve second-pass subsystems (6 × {M1, M2}),
	// weighted by each subsystem's selection counts (paper Eq. 15).
	var devAll, testAll [][][]float64
	devAll = append(devAll, devM1...)
	devAll = append(devAll, devM2...)
	testAll = append(testAll, m1.Scores...)
	testAll = append(testAll, m2.Scores...)
	// Eq. 15 weights: M_n is how many test utterances met subsystem n's
	// confidence criterion (its Eq. 13 vote fired); each front-end's count
	// applies to both its M1 and M2 second-pass subsystems.
	perFE := p.SubsystemVoteCounts()
	counts := append(append([]int{}, perFE...), perFE...)
	weights := fusion.SelectionWeights(counts)
	t.DBAFusion = p.evalFused(p.fusePerDuration(devAll, testAll, weights))
	p.ck.save(ckKey, t)
	return t
}

// Fig3 reproduces paper Fig. 3: DET curves of the baseline fusion vs the
// (DBA-M1)+(DBA-M2) fusion, per duration.
type Fig3 struct {
	// Curves[dur] holds the two systems' DET points.
	Curves map[float64]Fig3Curves
	V      int
}

// Fig3Curves pairs the two systems at one duration.
type Fig3Curves struct {
	Baseline []metrics.DETPoint
	DBA      []metrics.DETPoint
}

// RunFig3 computes the DET curves from the same fusions as Table 4.
func RunFig3(p *Pipeline, v int) *Fig3 {
	baseFused := p.fusePerDuration(p.BaselineDev, p.BaselineScores, nil)
	m1 := p.DBAOutcome(v, dba.M1)
	m2 := p.DBAOutcome(v, dba.M2)
	var devAll, testAll [][][]float64
	devAll = append(devAll, p.DevScores(m1.Retrained)...)
	devAll = append(devAll, p.DevScores(m2.Retrained)...)
	testAll = append(testAll, m1.Scores...)
	testAll = append(testAll, m2.Scores...)
	perFE := p.SubsystemVoteCounts()
	weights := fusion.SelectionWeights(append(append([]int{}, perFE...), perFE...))
	dbaFused := p.fusePerDuration(devAll, testAll, weights)

	f := &Fig3{Curves: make(map[float64]Fig3Curves), V: v}
	for _, dur := range corpus.Durations {
		f.Curves[dur] = Fig3Curves{
			Baseline: metrics.DET(TrialsFor(baseFused, p.TestLabels, p.TestIdx[dur])),
			DBA:      metrics.DET(TrialsFor(dbaFused, p.TestLabels, p.TestIdx[dur])),
		}
	}
	return f
}

// VoteAblation compares the paper's strict Eq. 13 vote criterion against a
// naive arg-max vote (every subsystem always votes its top language) at a
// fixed threshold — the design-choice ablation from DESIGN.md.
type VoteAblation struct {
	V                     int
	StrictSize, NaiveSize int
	StrictErrorPct        float64
	NaiveErrorPct         float64
}

// RunVoteAblation evaluates both criteria on the baseline vote scores.
func RunVoteAblation(p *Pipeline, v int) *VoteAblation {
	strictVotes := dba.CountVotes(p.VoteScores)
	strictSel := dba.Select(strictVotes, v)

	// Naive: arg-max votes regardless of sign or runner-up.
	m := len(p.TestLabels)
	naiveVotes := make([][]int, m)
	for j := range naiveVotes {
		naiveVotes[j] = make([]int, NumLangs)
	}
	for _, mat := range p.VoteScores {
		for j, row := range mat {
			best := 0
			for k, s := range row {
				if s > row[best] {
					best = k
				}
			}
			naiveVotes[j][best]++
		}
	}
	naiveSel := dba.Select(naiveVotes, v)
	return &VoteAblation{
		V:              v,
		StrictSize:     len(strictSel),
		NaiveSize:      len(naiveSel),
		StrictErrorPct: dba.SelectionErrorRate(strictSel, p.TestLabels) * 100,
		NaiveErrorPct:  dba.SelectionErrorRate(naiveSel, p.TestLabels) * 100,
	}
}

// SubsystemModels exposes the baseline models (used by benches).
func (p *Pipeline) SubsystemModels() []*svm.OneVsRest { return p.Baseline }

// FusedBaselineEER fuses the six baseline subsystems with an explicit
// fusion configuration and returns the EER (%) at one duration — used by
// the LDA-only vs LDA-MMI ablation bench. It uses the same trial-level
// construction as fusePerDuration.
func (p *Pipeline) FusedBaselineEER(cfg fusion.Config, dur float64) float64 {
	q := len(p.BaselineDev)
	trialFeat := func(mats [][][]float64, j, k int) []float64 {
		x := make([]float64, q)
		for s := 0; s < q; s++ {
			x[s] = mats[s][j][k]
		}
		return x
	}
	var devX [][]float64
	var devY []int
	for _, i := range p.DevIdx[dur] {
		for k := 0; k < NumLangs; k++ {
			devX = append(devX, trialFeat(p.BaselineDev, i, k))
			if p.DevLabels[i] == k {
				devY = append(devY, 1)
			} else {
				devY = append(devY, 0)
			}
		}
	}
	b, err := fusion.Train(devX, devY, 2, cfg)
	if err != nil {
		return -1
	}
	fused := make([][]float64, len(p.TestLabels))
	for _, j := range p.TestIdx[dur] {
		row := make([]float64, NumLangs)
		for k := range row {
			row[k] = b.Score(trialFeat(p.BaselineScores, j, k))[1]
		}
		fused[j] = row
	}
	eer, _ := Eval(fused, p.TestLabels, p.TestIdx[dur])
	return eer
}

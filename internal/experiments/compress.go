// Compressed serving: low-rank supervector projection + reduced-precision
// scoring kernels (the -compress-eval / compressed -export-models path).
//
// The uncompressed serving footprint is dominated by the per-front-end
// one-vs-rest weight matrices — K=23 languages × the full supervector
// dimension (Σ ≈ 16.7k dims across the six front-ends) in float64. The
// compressed form replaces them with a rank-r projection fitted on the
// training supervectors (deflated power iteration on XᵀX, seeded and
// deterministic) plus a rank-space OVR set retrained on the projected
// training vectors. The projection basis, not the weights, then dominates
// the footprint (r×dim vs 23×r), so the basis itself is stored at the
// chosen precision — float64, float32, or symmetric per-direction int8 —
// and for int8 bundles the rank-space weights ship as a quantized kernel
// (svm.Quantized) with the float64 set dropped.
//
// Offline and online scoring see identical artifacts: training, scoring,
// and the exported bundle all project through the packed (serialized)
// basis, so a score computed here is the score cmd/lred serves.
package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchhot"
	"repro/internal/fusion"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/persist"
	"repro/internal/proj"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
	"repro/internal/vsm"
)

// CompressedSystem is one (rank, precision) operating point of a
// pipeline: per-front-end packed projections, rank-space models, and the
// compressed score matrices over the pipeline's dev/test splits.
type CompressedSystem struct {
	Rank      int
	Precision svm.Precision

	// Projs are the exact float64 projections (for analysis); Packed the
	// serialized forms everything actually scores through.
	Projs  []*proj.Projection
	Packed []*proj.Packed
	// OVRs holds the rank-space float models (float64/float32 points);
	// Quants the int8 kernels (int8 points). Exactly one is non-nil per
	// front-end.
	OVRs   []*svm.OneVsRest
	Quants []*svm.Quantized

	// TestScores/DevScores are [q][utterance][language] over the pooled
	// test and dev orders, computed with the precision-dispatched kernel
	// (quantization loss included for int8).
	TestScores [][][]float64
	DevScores  [][][]float64
}

// Compress fits rank-r projections on the training supervectors and
// builds the compressed system at the given precision.
func (p *Pipeline) Compress(rank int, prec svm.Precision) (*CompressedSystem, error) {
	projs, err := p.fitProjections(rank)
	if err != nil {
		return nil, err
	}
	return p.compressWith(projs, rank, prec)
}

// fitProjections fits one rank-r projection per front-end on that
// front-end's (TFLLR-scaled) training supervectors. The fit is
// anchored on the front-end's full-dimension baseline SVM weight
// vectors — their span preserves the baseline's linear scores exactly,
// so a rank just past the language count serves at full-dimension
// accuracy — then supervised by the training language labels
// (between-class directions), with variance directions for any
// remaining rank. Deterministic in (pipeline seed, front-end order).
func (p *Pipeline) fitProjections(rank int) ([]*proj.Projection, error) {
	sp := obs.StartSpan("compress.fit-projections")
	defer sp.End()
	sp.SetAttr("rank", float64(rank))
	out := make([]*proj.Projection, len(p.FEs))
	errs := make([]error, len(p.FEs))
	parallel.For(len(p.FEs), func(q int) {
		anchors := make([][]float64, len(p.Baseline[q].Models))
		for c, m := range p.Baseline[q].Models {
			anchors[c] = m.W
		}
		out[q], errs[q] = proj.Fit(p.Data[q].Train, p.Data[q].Dim, proj.Config{
			Rank:       rank,
			Seed:       p.Seed,
			Anchors:    anchors,
			Labels:     p.TrainLabels,
			NumClasses: NumLangs,
		})
	})
	for q, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: projection for %s: %w", p.FEs[q].Name, err)
		}
	}
	return out, nil
}

// truncateProj cuts a fitted projection down to a smaller rank. The
// deflation order makes the leading directions of a rank-R fit identical
// to a direct rank-r fit (r < R), so one fit serves a whole rank sweep.
func truncateProj(pj *proj.Projection, rank int) *proj.Projection {
	if rank >= pj.Rank {
		return pj
	}
	return &proj.Projection{
		Dim:    pj.Dim,
		Rank:   rank,
		Basis:  pj.Basis[:rank*pj.Dim],
		Energy: pj.Energy[:rank],
	}
}

// compressWith builds the operating point from pre-fitted projections
// (truncating them to rank as needed): pack the basis at the target
// precision, project train/dev/test through the packed basis, retrain
// the OVR set in rank space, and (for int8) quantize it.
func (p *Pipeline) compressWith(projs []*proj.Projection, rank int, prec svm.Precision) (*CompressedSystem, error) {
	sp := obs.StartSpan("compress.build")
	defer sp.End()
	sp.SetAttr("rank", float64(rank))
	sp.SetLabel("precision", prec.String())

	nFE := len(p.FEs)
	cs := &CompressedSystem{
		Rank: rank, Precision: prec,
		Projs:  make([]*proj.Projection, nFE),
		Packed: make([]*proj.Packed, nFE),
		OVRs:   make([]*svm.OneVsRest, nFE),
		Quants: make([]*svm.Quantized, nFE),

		TestScores: make([][][]float64, nFE),
		DevScores:  make([][][]float64, nFE),
	}
	dev := p.Corpus.AllDev()
	errs := make([]error, nFE)
	parallel.For(nFE, func(q int) {
		pj := truncateProj(projs[q], rank)
		packed, err := pj.Pack(prec)
		if err != nil {
			errs[q] = err
			return
		}
		trainR := vsm.ProjectVectors(packed, rank, p.Data[q].Train)
		testR := vsm.ProjectVectors(packed, rank, p.Data[q].Test)
		devR := vsm.ProjectVectors(packed, rank, p.Feats[q].Vectors(dev))
		ovr := svm.TrainOVR(trainR, p.TrainLabels, NumLangs, rank, p.SVMOptions)
		cs.Projs[q] = pj
		cs.Packed[q] = packed
		if prec == svm.Int8 {
			qk, err := ovr.Quantize()
			if err != nil {
				errs[q] = err
				return
			}
			cs.Quants[q] = qk
			cs.TestScores[q] = scoreMatrixQuant(qk, testR)
			cs.DevScores[q] = scoreMatrixQuant(qk, devR)
			return
		}
		cs.OVRs[q] = ovr
		cs.TestScores[q] = scoreMatrixAt(ovr, prec, testR)
		cs.DevScores[q] = scoreMatrixAt(ovr, prec, devR)
	})
	for q, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: compress %s: %w", p.FEs[q].Name, err)
		}
	}
	return cs, nil
}

func scoreMatrixQuant(qk *svm.Quantized, xs []*sparse.Vector) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = qk.Scores(x)
	}
	return out
}

func scoreMatrixAt(o *svm.OneVsRest, prec svm.Precision, xs []*sparse.Vector) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, o.NumClasses)
		o.ScoresAtInto(prec, x, row)
		out[i] = row
	}
	return out
}

// BuildBundle assembles the compressed serving bundle: packed projection
// + rank-space kernel per front-end, with the trial-level fusion backend
// retrained on the compressed dev scores (the uncompressed backend's
// feature space is the uncompressed score distribution; reusing it would
// mis-calibrate). The tier-1 cascade is deliberately omitted — its phone
// LMs are the largest remaining artifact, and a compressed bundle's
// entire purpose is footprint.
func (cs *CompressedSystem) BuildBundle(p *Pipeline) *persist.Bundle {
	b := &persist.Bundle{
		Languages: append([]string(nil), synthlang.LanguageNames...),
	}
	for q, fe := range p.FEs {
		fem := persist.FrontEndModel{
			Name:      fe.Name,
			NumPhones: fe.Set.Size,
			Order:     fe.Space.Order,
			TFLLR:     p.Feats[q].TF,
			Proj:      cs.Packed[q],
			Precision: cs.Precision.String(),
		}
		if cs.Precision == svm.Int8 {
			fem.Quant = cs.Quants[q]
		} else {
			fem.OVR = cs.OVRs[q]
		}
		b.FrontEnds = append(b.FrontEnds, fem)
	}
	b.Fusion = cs.fusionBackend(p)
	return b
}

// fusionBackend trains the compressed bundle's pooled-dev fusion backend
// on the compressed dev score matrices (same trial construction as the
// uncompressed Pipeline.fusionBackend).
func (cs *CompressedSystem) fusionBackend(p *Pipeline) *fusion.Backend {
	var devX [][]float64
	var devY []int
	for i := range p.DevLabels {
		for k := 0; k < NumLangs; k++ {
			x := make([]float64, len(cs.DevScores))
			for q := range cs.DevScores {
				x[q] = cs.DevScores[q][i][k]
			}
			devX = append(devX, x)
			if p.DevLabels[i] == k {
				devY = append(devY, 1)
			} else {
				devY = append(devY, 0)
			}
		}
	}
	bk, err := fusion.Train(devX, devY, 2, fusion.DefaultConfig())
	if err != nil {
		return nil
	}
	return bk
}

// ExportModelsCompressed writes the compressed serving bundle + manifest
// to dir (the cmd/lre -export-models path with -compress-rank set).
func (p *Pipeline) ExportModelsCompressed(dir, gitDescribe string, rank int, prec svm.Precision) (*persist.Manifest, error) {
	sp := obs.StartSpan("export-models-compressed")
	defer sp.End()
	cs, err := p.Compress(rank, prec)
	if err != nil {
		return nil, err
	}
	m := persist.Manifest{
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		Seed:        p.Seed,
		Scale:       p.Scale.String(),
		GitDescribe: gitDescribe,
	}
	if err := persist.SaveBundle(dir, cs.BuildBundle(p), m); err != nil {
		return nil, err
	}
	_, out, err := persist.LoadBundle(dir)
	return out, err
}

// ---- the compress-eval sweep (BENCH_compress.json) ----

// CompressPoint is one measured (rank, precision) cell of the sweep.
type CompressPoint struct {
	Rank      int    `json:"rank"`
	Precision string `json:"precision"`
	// BundleBytes is the serialized (sealed) compressed bundle size;
	// SizeReduction the ratio vs the uncompressed serving bundle.
	BundleBytes   int     `json:"bundle_bytes"`
	SizeReduction float64 `json:"size_reduction"`
	// LoadMs is the min-of-3 bundle decode time (UnmarshalSealed).
	LoadMs float64 `json:"load_ms"`
	// KernelUttPerSec is the batch-scoring stage: the serialized
	// rank-space kernel over prepared (projected) vectors — exactly the
	// stage lred's micro-batcher runs in its critical section, and the
	// same protocol as BENCH_hotpath's batch-score entry. Speedup is its
	// ratio vs the baseline's serialized full-dimension kernel — the
	// serialization bottleneck both systems contend on. The projection
	// is NOT in this stage: in this codebase it is applied during vector
	// building (serve buildVectors / vsm.Extract), on the handler path
	// where lattice decode + n-gram extraction dominate it by orders of
	// magnitude.
	KernelUttPerSec float64 `json:"kernel_utt_per_sec"`
	Speedup         float64 `json:"speedup"`
	// ThroughputUttPerSec is the serving-topology companion number: the
	// projection stage at handler concurrency (parallel.ForPool, as
	// lred's buildVectors applies it per request) followed by the
	// serialized rank-space kernel. SequentialUttPerSec is the
	// single-thread number (projection + kernel back to back) — honest
	// about total per-utterance model work: at rank r the projection
	// alone costs ~r/23 of the baseline kernel pass, so the sequential
	// number *drops* below baseline once r approaches the class count
	// even while the batcher stage collapses by ~nnz/r.
	ThroughputUttPerSec float64 `json:"throughput_utt_per_sec"`
	SequentialUttPerSec float64 `json:"sequential_utt_per_sec"`
	// FusedEER maps duration tier ("30s"/"10s"/"3s") to the LDA-MMI
	// fused EER (%); DeltaEER is point minus baseline per tier.
	FusedEER       map[string]float64 `json:"fused_eer"`
	DeltaEER       map[string]float64 `json:"delta_eer"`
	MaxAbsDeltaEER float64            `json:"max_abs_delta_eer"`
}

// CompressBaseline is the uncompressed reference the sweep compares
// against: the full serving bundle (float64 weights, cascade included).
// Its throughput is the serialized full-dimension packed kernel over
// prepared CSR test vectors — the micro-batcher's critical section,
// which is the denominator of every point's Speedup. The baseline has
// no per-utterance model work outside that stage (vector building is
// common to both paths, and its projection is the identity).
type CompressBaseline struct {
	BundleBytes         int                `json:"bundle_bytes"`
	LoadMs              float64            `json:"load_ms"`
	ThroughputUttPerSec float64            `json:"throughput_utt_per_sec"`
	FusedEER            map[string]float64 `json:"fused_eer"`
}

// CompressReport is the committed BENCH_compress.json artifact.
type CompressReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Scale     string `json:"scale"`
	Seed      uint64 `json:"seed"`

	Baseline CompressBaseline `json:"baseline"`
	Points   []CompressPoint  `json:"points"`
	// Headline is the selected operating point: the largest size
	// reduction among points whose batch-scoring (batcher-stage) Speedup
	// is ≥ 1.3 and every per-tier |ΔEER| ≤ 0.5 absolute. Nil when no
	// point qualifies.
	Headline         *CompressPoint `json:"headline,omitempty"`
	HeadlineCriteria string         `json:"headline_criteria"`
}

// DefaultCompressRanks and DefaultCompressPrecisions define the standard
// sweep grid.
var (
	DefaultCompressRanks      = []int{8, 16, 24, 32}
	DefaultCompressPrecisions = []svm.Precision{svm.Float64, svm.Float32, svm.Int8}
)

func durKey(dur float64) string { return fmt.Sprintf("%gs", dur) }

// RunCompressEval measures the full rank × precision grid against the
// uncompressed baseline: serialized size, load time, batch-scoring
// throughput (benchhot's min-of-3 protocol), and fused EER per duration
// tier.
func RunCompressEval(p *Pipeline, ranks []int, precs []svm.Precision) (*CompressReport, error) {
	sp := obs.StartSpan("compress-eval")
	defer sp.End()
	if len(ranks) == 0 {
		ranks = DefaultCompressRanks
	}
	if len(precs) == 0 {
		precs = DefaultCompressPrecisions
	}
	rep := &CompressReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scale:     p.Scale.String(),
		Seed:      p.Seed,
		HeadlineCriteria: "max size_reduction with batch-scoring (batcher-stage kernel) speedup >= 1.3 " +
			"and per-tier |delta_eer| <= 0.5 (absolute EER percentage points) vs the uncompressed " +
			"fused baseline; throughput_utt_per_sec / sequential_utt_per_sec report the end-to-end " +
			"projection+kernel cost alongside",
	}

	// Baseline: the real serving bundle, the exact float64 kernel, the
	// uncompressed fused EER.
	baseBundle := p.BuildBundle()
	sealed, err := persist.MarshalSealed(baseBundle)
	if err != nil {
		return nil, err
	}
	rep.Baseline.BundleBytes = len(sealed)
	rep.Baseline.LoadMs = loadMs(sealed)
	nTest := len(p.TestLabels)
	baseNs := benchhot.Bench(func(b *testing.B) {
		out := make([]float64, NumLangs)
		for n := 0; n < b.N; n++ {
			for q := range p.Baseline {
				for _, x := range p.Data[q].Test {
					p.Baseline[q].ScoresInto(x, out)
				}
			}
		}
	})
	rep.Baseline.ThroughputUttPerSec = uttPerSec(baseNs, nTest)
	baseEER := make(map[string]float64)
	for dur, cell := range p.evalFused(p.fusePerDuration(p.BaselineDev, p.BaselineScores, nil)) {
		baseEER[durKey(dur)] = cell.EER
	}
	rep.Baseline.FusedEER = baseEER

	// One projection fit per front-end at the largest rank serves every
	// cell (deflation order nests the directions).
	maxRank := 0
	for _, r := range ranks {
		if r > maxRank {
			maxRank = r
		}
	}
	projs, err := p.fitProjections(maxRank)
	if err != nil {
		return nil, err
	}

	for _, rank := range ranks {
		for _, prec := range precs {
			cs, err := p.compressWith(projs, rank, prec)
			if err != nil {
				return nil, err
			}
			pt, err := measurePoint(p, cs, rep.Baseline)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, *pt)
		}
	}

	// Headline selection.
	for i := range rep.Points {
		pt := &rep.Points[i]
		if pt.Speedup < 1.3 || pt.MaxAbsDeltaEER > 0.5 {
			continue
		}
		if rep.Headline == nil || pt.SizeReduction > rep.Headline.SizeReduction {
			rep.Headline = pt
		}
	}
	return rep, nil
}

// measurePoint sizes, times, and evaluates one compressed system.
func measurePoint(p *Pipeline, cs *CompressedSystem, base CompressBaseline) (*CompressPoint, error) {
	bundle := cs.BuildBundle(p)
	sealed, err := persist.MarshalSealed(bundle)
	if err != nil {
		return nil, err
	}
	pt := &CompressPoint{
		Rank:          cs.Rank,
		Precision:     cs.Precision.String(),
		BundleBytes:   len(sealed),
		SizeReduction: float64(base.BundleBytes) / float64(len(sealed)),
		LoadMs:        loadMs(sealed),
		FusedEER:      make(map[string]float64),
		DeltaEER:      make(map[string]float64),
	}

	// Throughput, three protocols over the same battery:
	//
	//  1. kernel only — the serialized batcher-stage scoring kernel over
	//     prepared (projected) vectors. This is the batch-scoring number
	//     Speedup is computed from, against the baseline's serialized
	//     full-dimension kernel over prepared CSR vectors.
	//  2. serving topology — the projection stage at handler concurrency
	//     (parallel.ForPool, as lred's buildVectors runs it per request)
	//     followed by the serialized rank-space kernel.
	//  3. sequential — projection + kernel single-threaded; honest about
	//     total per-utterance work (a rank-r projection alone costs
	//     ~r/23 of the baseline kernel pass).
	rank := cs.Rank
	nTest := len(p.TestLabels)
	projected := make([][]float64, len(cs.Packed))
	for q := range projected {
		projected[q] = make([]float64, len(p.Data[q].Test)*rank)
	}
	project := func(pool bool) {
		for q := range cs.Packed {
			pk, rows := cs.Packed[q], projected[q]
			if pool {
				parallel.ForPool("compress.bench.project", len(p.Data[q].Test), func(j int) {
					pk.ApplyInto(p.Data[q].Test[j], rows[j*rank:(j+1)*rank])
				})
			} else {
				for j, x := range p.Data[q].Test {
					pk.ApplyInto(x, rows[j*rank:(j+1)*rank])
				}
			}
		}
	}
	idxs := make([]int32, rank)
	for d := range idxs {
		idxs[d] = int32(d)
	}
	kernel := func(pv *sparse.Vector, out []float64) {
		for q := range cs.Packed {
			rows := projected[q]
			for j := range p.Data[q].Test {
				pv.Val = rows[j*rank : (j+1)*rank]
				if cs.Quants[q] != nil {
					cs.Quants[q].ScoresInto(pv, out)
				} else {
					cs.OVRs[q].ScoresAtInto(cs.Precision, pv, out)
				}
			}
		}
	}
	project(false) // prepare projected vectors for the kernel-only run
	kern := benchhot.Bench(func(b *testing.B) {
		pv := &sparse.Vector{Idx: idxs}
		out := make([]float64, NumLangs)
		for n := 0; n < b.N; n++ {
			kernel(pv, out)
		}
	})
	pt.KernelUttPerSec = uttPerSec(kern, nTest)
	if base.ThroughputUttPerSec > 0 {
		pt.Speedup = pt.KernelUttPerSec / base.ThroughputUttPerSec
	}
	serving := benchhot.Bench(func(b *testing.B) {
		pv := &sparse.Vector{Idx: idxs}
		out := make([]float64, NumLangs)
		for n := 0; n < b.N; n++ {
			project(true)
			kernel(pv, out)
		}
	})
	pt.ThroughputUttPerSec = uttPerSec(serving, nTest)
	seq := benchhot.Bench(func(b *testing.B) {
		pv := &sparse.Vector{Idx: idxs}
		out := make([]float64, NumLangs)
		for n := 0; n < b.N; n++ {
			project(false)
			kernel(pv, out)
		}
	})
	pt.SequentialUttPerSec = uttPerSec(seq, nTest)

	fused := p.fusePerDuration(cs.DevScores, cs.TestScores, nil)
	for dur, cell := range p.evalFused(fused) {
		k := durKey(dur)
		pt.FusedEER[k] = cell.EER
		pt.DeltaEER[k] = cell.EER - base.FusedEER[k]
		if d := pt.DeltaEER[k]; d > pt.MaxAbsDeltaEER {
			pt.MaxAbsDeltaEER = d
		} else if -d > pt.MaxAbsDeltaEER {
			pt.MaxAbsDeltaEER = -d
		}
	}
	return pt, nil
}

func loadMs(sealed []byte) float64 {
	res := benchhot.Bench(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			var bb persist.Bundle
			if err := persist.UnmarshalSealed(sealed, &bb); err != nil {
				b.Fatal(err)
			}
		}
	})
	return benchhot.MetricOf(res).NsPerOp / 1e6
}

func uttPerSec(res testing.BenchmarkResult, nUtt int) float64 {
	ns := benchhot.MetricOf(res).NsPerOp
	if ns <= 0 {
		return 0
	}
	return float64(nUtt) / (ns / 1e9)
}

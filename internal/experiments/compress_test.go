package experiments

import (
	"testing"

	"repro/internal/persist"
	"repro/internal/svm"
	"repro/internal/vsm"
)

// TestCompressTinyEndToEnd runs the compression path at tiny scale over
// every precision rung: the compressed bundle must validate, survive a
// sealed round trip, and score the pooled test set exactly like the
// offline compressed system (the offline/online consistency contract —
// both sides project through the same packed basis).
func TestCompressTinyEndToEnd(t *testing.T) {
	p := BuildPipeline(ScaleTiny, 5)
	const rank = 4
	for _, prec := range []svm.Precision{svm.Float64, svm.Float32, svm.Int8} {
		t.Run(prec.String(), func(t *testing.T) {
			cs, err := p.Compress(rank, prec)
			if err != nil {
				t.Fatal(err)
			}
			b := cs.BuildBundle(p)
			if err := b.Validate(); err != nil {
				t.Fatal(err)
			}
			sealed, err := persist.MarshalSealed(b)
			if err != nil {
				t.Fatal(err)
			}
			var lb persist.Bundle
			if err := persist.UnmarshalSealed(sealed, &lb); err != nil {
				t.Fatal(err)
			}
			if err := lb.Validate(); err != nil {
				t.Fatal(err)
			}
			for q := range lb.FrontEnds {
				fe := &lb.FrontEnds[q]
				if fe.WeightDim() != rank {
					t.Fatalf("front-end %s weight dim %d, want rank %d", fe.Name, fe.WeightDim(), rank)
				}
				// The loaded bundle's projection+kernel reproduce the offline
				// compressed scores bit-for-bit (TFLLR is already applied to
				// the pipeline's cached test vectors).
				for j, x := range p.Data[q].Test {
					got := fe.Scores(fe.Proj.Apply(x))
					want := cs.TestScores[q][j]
					for k := range want {
						if got[k] != want[k] {
							t.Fatalf("front-end %s utt %d class %d: served %v, offline %v",
								fe.Name, j, k, got[k], want[k])
						}
					}
					if j >= 3 {
						break // three utterances per FE pin the path
					}
				}
			}
			if b.Fusion == nil {
				t.Fatal("compressed bundle shipped without a fusion backend")
			}
			if b.Cascade != nil {
				t.Fatal("compressed bundle should omit the cascade")
			}
		})
	}
}

// TestCompressEvalTiny exercises the sweep harness end to end on a
// minimal grid: the report must carry a baseline, one point per cell
// with finite measurements, and coherent size accounting.
func TestCompressEvalTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-protocol test (~10 s of timed runs): skipped in -short")
	}
	p := BuildPipeline(ScaleTiny, 7)
	rep, err := RunCompressEval(p, []int{3}, []svm.Precision{svm.Int8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.BundleBytes <= 0 || rep.Baseline.ThroughputUttPerSec <= 0 {
		t.Fatalf("degenerate baseline: %+v", rep.Baseline)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("%d points, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.Rank != 3 || pt.Precision != "int8" {
		t.Fatalf("point identity %+v", pt)
	}
	if pt.BundleBytes <= 0 || pt.BundleBytes >= rep.Baseline.BundleBytes {
		t.Fatalf("int8 bundle %d bytes vs baseline %d: expected smaller", pt.BundleBytes, rep.Baseline.BundleBytes)
	}
	if pt.SizeReduction <= 1 {
		t.Fatalf("size reduction %v, want > 1", pt.SizeReduction)
	}
	if pt.ThroughputUttPerSec <= 0 || pt.KernelUttPerSec <= 0 || pt.SequentialUttPerSec <= 0 || pt.LoadMs <= 0 {
		t.Fatalf("degenerate measurements: %+v", pt)
	}
	for _, k := range []string{"30s", "10s", "3s"} {
		if _, ok := pt.FusedEER[k]; !ok {
			t.Fatalf("missing EER tier %s", k)
		}
	}
}

// TestCompressedOrderPreservationMediumSeed42 is the int8 referee at the
// golden operating conditions: on the medium seed-42 pipeline, the int8
// kernel must rank languages identically to the float64 oracle scoring
// the explicitly dequantized weights — per-front-end argmax and the
// fused per-utterance language ordering both match. This isolates the
// scale-reassociation of the dequant epilogue; quantization loss itself
// is measured as ΔEER by -compress-eval.
func TestCompressedOrderPreservationMediumSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale pipeline (~1 min): skipped in -short")
	}
	p := BuildPipeline(ScaleMedium, 42)
	const rank = 24 // the BENCH_compress.json headline operating point
	cs, err := p.Compress(rank, svm.Int8)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle scores: dequantized float64 models over the same projected
	// test vectors.
	oracleScores := make([][][]float64, len(p.FEs))
	for q := range p.FEs {
		testR := vsm.ProjectVectors(cs.Packed[q], rank, p.Data[q].Test)
		oracle := cs.Quants[q].Dequantize()
		oracleScores[q] = make([][]float64, len(testR))
		for j, x := range testR {
			oracleScores[q][j] = oracle.Scores(x)
		}
	}

	// Per-front-end argmax must agree everywhere.
	for q := range p.FEs {
		for j := range cs.TestScores[q] {
			if a, b := argmax(cs.TestScores[q][j]), argmax(oracleScores[q][j]); a != b {
				t.Fatalf("front-end %s utt %d: int8 argmax %d, oracle %d", p.FEs[q].Name, j, a, b)
			}
		}
	}

	// Fused ranking: both score sets through the identical fusion
	// backends (trained once on the shipped int8 dev scores), the
	// per-utterance language ordering must match.
	fusedQ := p.fusePerDuration(cs.DevScores, cs.TestScores, nil)
	fusedO := p.fusePerDuration(cs.DevScores, oracleScores, nil)
	for j := range fusedQ {
		rq := ranking(fusedQ[j])
		ro := ranking(fusedO[j])
		for i := range rq {
			if rq[i] != ro[i] {
				t.Fatalf("utt %d: fused ranking diverges at position %d (int8 %v vs oracle %v)", j, i, rq, ro)
			}
		}
	}
}

func argmax(row []float64) int {
	best := 0
	for k, v := range row {
		if v > row[best] {
			best = k
		}
	}
	return best
}

// ranking returns language indices in descending score order (stable
// insertion sort — rows are short).
func ranking(row []float64) []int {
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && row[idx[j]] > row[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/synthlang"
)

// OpenSetResult compares the closed-set condition the paper evaluates
// against LRE09's open-set condition, where test audio may come from
// out-of-set (OOS) languages that every one of the 23 detectors must
// reject. OOS trials only add non-target trials, so the open-set EER is
// the stress test of detector calibration.
type OpenSetResult struct {
	// Per duration: closed-set and open-set pooled EER (%), and the
	// false-alarm rate (%) on OOS trials at the closed-set EER threshold.
	Closed, Open, OOSFalseAlarm map[float64]float64
	NumOOSLangs, OOSPerLang     int
}

// RunOpenSet generates oosLangs extra synthetic languages (drawn from a
// disjoint seed so they are genuinely out-of-set), decodes perLang
// utterances per duration through every front-end, and rescores the
// pooled detection trials with the OOS non-target trials added.
func RunOpenSet(p *Pipeline, oosLangs, perLang int) *OpenSetResult {
	// OOS languages come from a shifted seed: same generator family,
	// different draws — unseen phonotactics.
	all := synthlang.Generate(corpus.DefaultConfig().LangConfig, p.Seed+7777)
	if oosLangs > len(all) {
		oosLangs = len(all)
	}
	oos := all[:oosLangs]
	cfg := CorpusConfig(p.Scale, p.Seed)
	root := rng.New(p.Seed).SplitString("openset")

	res := &OpenSetResult{
		Closed:        make(map[float64]float64),
		Open:          make(map[float64]float64),
		OOSFalseAlarm: make(map[float64]float64),
		NumOOSLangs:   oosLangs,
		OOSPerLang:    perLang,
	}
	for _, dur := range corpus.Durations {
		// Closed-set trials from the cached baseline scores, pooled over
		// front-ends.
		var closed []metrics.Trial
		for q := range p.BaselineScores {
			closed = append(closed, TrialsFor(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])...)
		}
		eerClosed, th := metrics.EERPoint(closed)
		res.Closed[dur] = eerClosed * 100

		// OOS trials: decode fresh utterances through every front-end.
		type job struct {
			lang *synthlang.Language
			i    int
		}
		var jobs []job
		for _, lang := range oos {
			for i := 0; i < perLang; i++ {
				jobs = append(jobs, job{lang, i})
			}
		}
		durCopy := dur
		oosScores := parallel.Map(len(jobs), func(j int) [][]float64 {
			jb := jobs[j]
			out := make([][]float64, len(p.FEs))
			for q, fe := range p.FEs {
				r := root.SplitString(jb.lang.Name).Split(uint64(jb.i)*31 + uint64(q))
				spk := synthlang.NewSpeaker(r, jb.i)
				u := jb.lang.Sample(r, durCopy, spk, cfg.TestChannels.Draw(r))
				v := fe.Space.Supervector(fe.Decode(r, u))
				if tf := p.Feats[q].TF; tf != nil {
					tf.Apply(v)
				}
				out[q] = p.Baseline[q].Scores(v)
			}
			return out
		})
		open := append([]metrics.Trial(nil), closed...)
		oosAccepted, oosTotal := 0, 0
		for _, rows := range oosScores {
			for _, row := range rows {
				for _, s := range row {
					open = append(open, metrics.Trial{Score: s, Target: false})
					oosTotal++
					if s > th {
						oosAccepted++
					}
				}
			}
		}
		res.Open[dur] = metrics.EER(open) * 100
		if oosTotal > 0 {
			res.OOSFalseAlarm[dur] = float64(oosAccepted) / float64(oosTotal) * 100
		}
	}
	return res
}

// String renders the comparison.
func (r *OpenSetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Open-set evaluation (extension): %d OOS languages × %d utterances/duration\n",
		r.NumOOSLangs, r.OOSPerLang)
	fmt.Fprintf(&b, "%-6s %12s %12s %18s\n", "dur", "closed EER%", "open EER%", "OOS FA% @closed-th")
	for _, dur := range corpus.Durations {
		fmt.Fprintf(&b, "%4.0fs %12.2f %12.2f %18.2f\n",
			dur, r.Closed[dur], r.Open[dur], r.OOSFalseAlarm[dur])
	}
	return b.String()
}

package experiments

import (
	"testing"

	"repro/internal/persist"
	"repro/internal/synthlang"
)

// TestExportModelsRoundTrip is the export↔serve contract: a bundle written
// by ExportModels must reproduce the batch pipeline's baseline score
// matrix bit-for-bit when its OVR sets score the pipeline's own (already
// TFLLR-scaled) test supervectors.
func TestExportModelsRoundTrip(t *testing.T) {
	p := sharedPipeline(t)
	dir := t.TempDir()
	m, err := p.ExportModels(dir, "test-describe")
	if err != nil {
		t.Fatal(err)
	}
	if m.FormatVersion != persist.BundleFormatVersion {
		t.Fatalf("manifest format version %d", m.FormatVersion)
	}
	if m.Seed != p.Seed || m.Scale != p.Scale.String() || m.GitDescribe != "test-describe" {
		t.Fatalf("manifest provenance wrong: %+v", m)
	}
	if m.CreatedAt == "" {
		t.Fatal("manifest has no creation timestamp")
	}
	if len(m.FrontEnds) != len(p.FEs) {
		t.Fatalf("manifest lists %d front-ends, pipeline has %d", len(m.FrontEnds), len(p.FEs))
	}

	b, _, err := persist.LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Languages) != NumLangs {
		t.Fatalf("bundle has %d languages, want %d", len(b.Languages), NumLangs)
	}
	for k, name := range b.Languages {
		if name != synthlang.LanguageNames[k] {
			t.Fatalf("language %d is %q, want %q", k, name, synthlang.LanguageNames[k])
		}
	}
	if !m.Fusion || b.Fusion == nil {
		t.Fatal("exported bundle has no fusion backend")
	}

	// Exact score equality on every pooled test utterance × front-end.
	for q, fe := range p.FEs {
		if b.FrontEnds[q].Name != fe.Name {
			t.Fatalf("front-end %d is %q, want %q", q, b.FrontEnds[q].Name, fe.Name)
		}
		for j := range p.TestLabels {
			got := b.FrontEnds[q].OVR.Scores(p.Data[q].Test[j])
			want := p.BaselineScores[q][j]
			if len(got) != len(want) {
				t.Fatalf("%s: %d scores, want %d", fe.Name, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s utt %d score[%d]: bundle %v vs pipeline %v",
						fe.Name, j, k, got[k], want[k])
				}
			}
		}
	}
}

// TestBuildBundleValidates guards the invariants the server relies on.
func TestBuildBundleValidates(t *testing.T) {
	p := sharedPipeline(t)
	b := p.BuildBundle()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.FrontEnds) != len(p.FEs) {
		t.Fatalf("%d front-ends, want %d", len(b.FrontEnds), len(p.FEs))
	}
	for q, fe := range b.FrontEnds {
		if fe.TFLLR == nil {
			t.Fatalf("front-end %q exported without its TFLLR scaler", fe.Name)
		}
		if fe.NumPhones != p.FEs[q].Set.Size || fe.Order != p.FEs[q].Space.Order {
			t.Fatalf("front-end %q space %d^%d does not match pipeline", fe.Name, fe.NumPhones, fe.Order)
		}
	}
}

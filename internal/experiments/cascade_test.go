package experiments

import (
	"math"
	"testing"

	"repro/internal/cascade"
)

func TestCascadeTinyPipelineEndToEnd(t *testing.T) {
	p := BuildPipeline(ScaleTiny, 1)
	m, err := p.TrainCascade()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.FrontEnd != CascadeFrontEnd {
		t.Fatalf("designated front-end %q", m.FrontEnd)
	}
	if got := len(m.Tiers); got != 3 {
		t.Fatalf("%d tiers", got)
	}

	// Memoized: the same model object comes back.
	m2, err := p.TrainCascade()
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatal("TrainCascade retrained instead of memoizing")
	}

	// Endpoint policies: -Inf escalates everything, +Inf exits everything.
	evInfDown, err := p.EvalCascade(m, cascade.Policy{Default: math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evInfDown {
		if ev.Exited != 0 {
			t.Fatalf("tier %s exited %d at -Inf", ev.Tier, ev.Exited)
		}
		if ev.EERCascadePct != ev.EERHeavyPct {
			t.Fatalf("tier %s: escalate-all EER %.3f differs from heavy %.3f", ev.Tier, ev.EERCascadePct, ev.EERHeavyPct)
		}
	}
	evInfUp, err := p.EvalCascade(m, cascade.Policy{Default: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evInfUp {
		if ev.Exited != ev.Total {
			t.Fatalf("tier %s exited %d/%d at +Inf", ev.Tier, ev.Exited, ev.Total)
		}
	}

	// Exit fraction is monotone in the threshold offset, per tier.
	prev := map[string]float64{}
	for _, th := range []float64{math.Inf(-1), -0.01, 0, 0.01, math.Inf(1)} {
		evs, err := p.EvalCascade(m, cascade.Policy{Default: th})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.ExitFrac < prev[ev.Tier] {
				t.Fatalf("tier %s: exit fraction fell from %.3f to %.3f at threshold %g",
					ev.Tier, prev[ev.Tier], ev.ExitFrac, th)
			}
			prev[ev.Tier] = ev.ExitFrac
		}
	}

	tb, err := p.RunCascadeTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb.String())
	for ti, tier := range m.Tiers {
		t.Logf("tier %s: MinPhones=%d RequiredMargin=%g tgt=(%g,%g) nt=(%g,%g) exit=%.2f acc=%.1f",
			tier.Name, tier.MinPhones, tier.RequiredMargin, tier.TargetA, tier.TargetB,
			tier.NontargetA, tier.NontargetB, tb.Rows[ti].ExitFrac, tb.Rows[ti].Tier1AccPct)
	}
}

func TestCascadeBundleExportCarriesCascade(t *testing.T) {
	p := BuildPipeline(ScaleTiny, 2)
	b := p.BuildBundle()
	if b.Cascade == nil {
		t.Fatal("exported bundle has no cascade")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := p.ExportModels(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if man.Cascade != CascadeFrontEnd {
		t.Fatalf("manifest cascade %q", man.Cascade)
	}
}

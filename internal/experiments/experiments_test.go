package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/fusion"
	"repro/internal/obs"
)

var (
	testPipeOnce sync.Once
	testPipe     *Pipeline
)

// sharedPipeline builds one tiny pipeline for the whole test binary
// (~8 s); individual tests assert different properties of it.
func sharedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if testing.Short() {
		t.Skip("pipeline build is slow")
	}
	testPipeOnce.Do(func() {
		testPipe = BuildPipeline(ScaleTiny, 42)
	})
	return testPipe
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "small", "medium", "full"} {
		sc, err := ParseScale(s)
		if err != nil {
			t.Fatal(err)
		}
		if sc.String() != s {
			t.Fatalf("round trip %q -> %q", s, sc.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("accepted unknown scale")
	}
}

func TestCorpusConfigScalesMonotone(t *testing.T) {
	prev := 0
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleFull} {
		cfg := CorpusConfig(s, 1)
		if cfg.TrainPerLang <= prev {
			t.Fatalf("scale %v not larger than previous", s)
		}
		prev = cfg.TrainPerLang
	}
}

func TestPipelineStructure(t *testing.T) {
	p := sharedPipeline(t)
	if len(p.FEs) != 6 || len(p.Data) != 6 || len(p.Baseline) != 6 {
		t.Fatal("expected six subsystems")
	}
	if len(p.TestLabels) != len(p.Data[0].Test) {
		t.Fatal("test labels misaligned with test vectors")
	}
	total := 0
	for _, dur := range corpus.Durations {
		total += len(p.TestIdx[dur])
	}
	if total != len(p.TestLabels) {
		t.Fatal("duration tiers do not partition the pooled test set")
	}
	for q := range p.BaselineScores {
		if len(p.BaselineScores[q]) != len(p.TestLabels) {
			t.Fatalf("subsystem %d score matrix wrong size", q)
		}
		if len(p.VoteScores[q]) != len(p.TestLabels) {
			t.Fatalf("subsystem %d vote-score matrix wrong size", q)
		}
	}
}

func TestBaselineEERDurationOrdering(t *testing.T) {
	// The paper's core regime: short utterances are harder. Require it per
	// front-end between the extremes (30 s vs 3 s).
	p := sharedPipeline(t)
	for q, d := range p.Data {
		e30, _ := Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[30])
		e3, _ := Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[3])
		if e3 <= e30 {
			t.Errorf("%s: 3s EER %.2f not worse than 30s %.2f", d.Name, e3, e30)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	// Paper Table 1: |T_DBA| grows and label error rises as V decreases.
	p := sharedPipeline(t)
	t1 := RunTable1(p)
	if len(t1.Rows) != 6 {
		t.Fatalf("%d rows", len(t1.Rows))
	}
	for i := 1; i < len(t1.Rows); i++ {
		if t1.Rows[i].V >= t1.Rows[i-1].V {
			t.Fatal("rows not in descending V order")
		}
		if t1.Rows[i].Size < t1.Rows[i-1].Size {
			t.Errorf("size not monotone: V=%d has %d < V=%d's %d",
				t1.Rows[i].V, t1.Rows[i].Size, t1.Rows[i-1].V, t1.Rows[i-1].Size)
		}
	}
	// Error at the loosest threshold exceeds error at the strictest.
	if t1.Rows[len(t1.Rows)-1].ErrorRatePct < t1.Rows[0].ErrorRatePct {
		t.Error("label error did not grow with looser thresholds")
	}
	// Selection is non-trivial at V=3.
	if t1.Rows[3].V != 3 || t1.Rows[3].Size == 0 {
		t.Error("V=3 selected nothing")
	}
	if !strings.Contains(t1.String(), "Table 1") {
		t.Error("renderer broken")
	}
}

func TestDBAM2ImprovesOverBaseline(t *testing.T) {
	// The headline direction: DBA-M2 at the paper's operating point must
	// beat the baseline in mean EER across front-ends and durations.
	p := sharedPipeline(t)
	o := p.DBAOutcome(3, dba.M2)
	var base, after float64
	var n int
	for q := range p.Data {
		for _, dur := range corpus.Durations {
			be, _ := Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])
			de, _ := Eval(o.Scores[q], p.TestLabels, p.TestIdx[dur])
			base += be
			after += de
			n++
		}
	}
	base /= float64(n)
	after /= float64(n)
	if after >= base {
		t.Fatalf("DBA-M2 mean EER %.2f did not improve on baseline %.2f", after, base)
	}
}

func TestDBAGainsGrowAsDurationShrinks(t *testing.T) {
	// Paper: relative gains are largest at 3 s. Compare mean absolute EER
	// gain at 3 s vs 30 s for DBA-M2 at V=3.
	p := sharedPipeline(t)
	o := p.DBAOutcome(3, dba.M2)
	gain := func(dur float64) float64 {
		var g float64
		for q := range p.Data {
			be, _ := Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])
			de, _ := Eval(o.Scores[q], p.TestLabels, p.TestIdx[dur])
			g += be - de
		}
		return g / float64(len(p.Data))
	}
	if gain(3) <= gain(30) {
		t.Fatalf("3s gain %.2f not larger than 30s gain %.2f", gain(3), gain(30))
	}
}

func TestDBAOutcomeMemoized(t *testing.T) {
	p := sharedPipeline(t)
	a := p.DBAOutcome(3, dba.M2)
	b := p.DBAOutcome(3, dba.M2)
	if a != b {
		t.Fatal("outcome not memoized")
	}
	c := p.DBAOutcome(3, dba.M1)
	if a == c {
		t.Fatal("different methods shared an outcome")
	}
}

func TestTableDBARunsAndRenders(t *testing.T) {
	p := sharedPipeline(t)
	t2 := RunTableDBA(p, dba.M1)
	t3 := RunTableDBA(p, dba.M2)
	if len(t2.FrontEnds) != 6 || len(t3.FrontEnds) != 6 {
		t.Fatal("front-end rows missing")
	}
	for v := 1; v <= 6; v++ {
		for _, fe := range t2.FrontEnds {
			for _, dur := range corpus.Durations {
				c := t2.ByV[v][fe][dur]
				if c.EER < 0 || c.EER > 100 || c.Cavg < 0 || c.Cavg > 100 {
					t.Fatalf("cell out of range: %+v", c)
				}
			}
		}
	}
	if bv := t3.BestV(); bv < 1 || bv > 6 {
		t.Fatalf("BestV = %d", bv)
	}
	if !strings.Contains(t2.String(), "Table 2") || !strings.Contains(t3.String(), "Table 3") {
		t.Error("table renderers mislabeled")
	}
}

func TestTable4FusionBeatsSingles(t *testing.T) {
	p := sharedPipeline(t)
	t4 := RunTable4(p, 3)
	for _, dur := range corpus.Durations {
		var meanSingle float64
		for _, fe := range t4.FrontEnds {
			meanSingle += t4.BaselineSingle[fe][dur].EER
		}
		meanSingle /= float64(len(t4.FrontEnds))
		if t4.BaselineFusion[dur].EER >= meanSingle {
			t.Errorf("%gs: fusion EER %.2f not better than mean single %.2f",
				dur, t4.BaselineFusion[dur].EER, meanSingle)
		}
	}
	if !strings.Contains(t4.String(), "Table 4") || !strings.Contains(t4.Summary(), "relative") {
		t.Error("Table 4 renderer broken")
	}
}

func TestTable4DBAFusionImprovesShortDurations(t *testing.T) {
	// The paper's headline: fused DBA beats fused baseline, most at 3 s.
	p := sharedPipeline(t)
	t4 := RunTable4(p, 3)
	if t4.DBAFusion[3].EER >= t4.BaselineFusion[3].EER {
		t.Fatalf("3s fused DBA %.2f not better than fused baseline %.2f",
			t4.DBAFusion[3].EER, t4.BaselineFusion[3].EER)
	}
}

func TestFig3Curves(t *testing.T) {
	p := sharedPipeline(t)
	f := RunFig3(p, 3)
	for _, dur := range corpus.Durations {
		c, ok := f.Curves[dur]
		if !ok {
			t.Fatalf("missing curves for %gs", dur)
		}
		for _, pts := range [][]struct{ Pfa, Pmiss float64 }{} {
			_ = pts
		}
		if len(c.Baseline) < 10 || len(c.DBA) < 10 {
			t.Fatalf("%gs: too few DET points", dur)
		}
		if c.Baseline[0].Pmiss != 1 || c.Baseline[len(c.Baseline)-1].Pfa != 1 {
			t.Error("DET endpoints wrong")
		}
	}
	if !strings.Contains(f.String(), "Fig. 3") {
		t.Error("Fig. 3 renderer broken")
	}
}

func TestVoteAblationStrictIsCleaner(t *testing.T) {
	p := sharedPipeline(t)
	a := RunVoteAblation(p, 3)
	if a.StrictErrorPct > a.NaiveErrorPct {
		t.Fatalf("strict criterion (%.2f%%) dirtier than naive (%.2f%%)",
			a.StrictErrorPct, a.NaiveErrorPct)
	}
	if a.NaiveSize < a.StrictSize {
		t.Fatalf("naive voting selected fewer (%d) than strict (%d)", a.NaiveSize, a.StrictSize)
	}
	if !strings.Contains(a.String(), "ablation") {
		t.Error("ablation renderer broken")
	}
}

func TestFusedBaselineEERAblation(t *testing.T) {
	p := sharedPipeline(t)
	ldaOnly := p.FusedBaselineEER(fusion.Config{MMIIters: 0, LearnRate: 0.05, Ridge: 1e-3}, 30)
	ldaMMI := p.FusedBaselineEER(fusion.DefaultConfig(), 30)
	if ldaOnly < 0 || ldaMMI < 0 {
		t.Fatal("fusion training failed")
	}
	// MMI refinement should not catastrophically hurt.
	if ldaMMI > ldaOnly+5 {
		t.Fatalf("MMI degraded fusion badly: %.2f vs %.2f", ldaMMI, ldaOnly)
	}
}

func TestTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run is slow")
	}
	cfg := DefaultTable5Config()
	cfg.NumUtterances = 1
	cfg.UtteranceDurS = 10
	t5, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 2 {
		t.Fatalf("%d rows", len(t5.Rows))
	}
	pp, dbaRow := t5.Rows[0], t5.Rows[1]
	if pp.System != "PPRVSM" || dbaRow.System != "DBA" {
		t.Fatal("row order wrong")
	}
	if dbaRow.Decode != pp.Decode {
		t.Error("decoding cost must be shared")
	}
	if dbaRow.SVProd != 2*pp.SVProd {
		t.Error("DBA must double the scoring cost")
	}
	// The paper's structural claim: decoding dominates by orders of
	// magnitude.
	if pp.Decode < 100*pp.SVGen || pp.Decode < 100*pp.SVProd {
		t.Errorf("decoding (%.2e) does not dominate SV gen (%.2e) / prod (%.2e)",
			pp.Decode, pp.SVGen, pp.SVProd)
	}
	if !strings.Contains(t5.String(), "Table 5") {
		t.Error("Table 5 renderer broken")
	}

	// The obs trace and the printed table must be the same measurement:
	// the decode RTF reconstructed from the span equals the table's value.
	rep := obs.Snapshot()
	sp := rep.Find("table5")
	if sp == nil {
		t.Fatal("no table5 span in the trace")
	}
	for _, name := range []string{"decode", "supervector-gen", "svm-score", "dba", "dba.round-1"} {
		if sp.Find(name) == nil {
			t.Errorf("trace missing stage span %q", name)
		}
	}
	dec := sp.Find("decode")
	derived := dec.DurationSec / dec.Attrs["audio_seconds"]
	if math.Abs(derived-pp.Decode) > 1e-12 || math.Abs(dec.Attrs["rtf"]-pp.Decode) > 1e-12 {
		t.Errorf("trace decode RTF %g / attr %g disagree with table %g",
			derived, dec.Attrs["rtf"], pp.Decode)
	}
}

package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dba"
	"repro/internal/faultinject"
)

// resumeSeed keeps the kill-and-resume suite on one deterministic run.
const resumeSeed = 42

// renderRun builds a tiny-scale pipeline (checkpointed when ck != nil)
// and renders the sections the suite pins: Table 1, the DBA-M1 sweep,
// and Table 4 at V=3. The returned string is the referee — resumed runs
// must reproduce it byte-for-byte.
func renderRun(t *testing.T, ck *Checkpointer) string {
	t.Helper()
	p, err := BuildPipelineCK(ScaleTiny, resumeSeed, ck)
	if err != nil {
		t.Fatalf("BuildPipelineCK: %v", err)
	}
	var b strings.Builder
	fmt.Fprintln(&b, RunTable1(p))
	fmt.Fprintln(&b, RunTableDBA(p, dba.M1))
	fmt.Fprintln(&b, RunTable4(p, 3))
	return b.String()
}

// goldenRun memoizes the uninterrupted, checkpoint-free reference output.
var goldenRun string

func golden(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		// Matches the package convention: pipeline builds are too slow for
		// -short. CI's crash-resume-smoke job covers kill-and-resume there.
		t.Skip("pipeline build is slow")
	}
	if goldenRun == "" {
		goldenRun = renderRun(t, nil)
	}
	return goldenRun
}

func openCK(t *testing.T, dir string) (*Checkpointer, *checkpoint.Store) {
	t.Helper()
	store, err := checkpoint.Open(dir, checkpoint.Meta{Scale: ScaleTiny.String(), Seed: resumeSeed})
	if err != nil {
		t.Fatalf("checkpoint.Open: %v", err)
	}
	return &Checkpointer{Store: store}, store
}

// runKilled executes a checkpointed run under a chaos plan that must kill
// it (panic), and reports what the run got done before dying.
func runKilled(t *testing.T, dir, plan string) {
	t.Helper()
	p, err := faultinject.ParsePlan(plan)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", plan, err)
	}
	restore := faultinject.Enable(p)
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatalf("chaos plan %q did not kill the run", plan)
		}
	}()
	ck, _ := openCK(t, dir)
	renderRun(t, ck)
}

// TestKillAndResumeBitIdentical is the tentpole referee: a run killed at
// a phase boundary (or in the middle of one) and resumed from its
// checkpoint directory must produce byte-identical tables to an
// uninterrupted run. Kill points cover decode mid-front-end, both sides
// of the manifest commit point during the extraction saves, the middle of
// the DBA sweep, and just before fusion.
func TestKillAndResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		plan string
	}{
		// Saves in a tiny full run land in phase order: 6 feature
		// snapshots, baseline, baseline-scores, the DBA sweep outcomes,
		// Table 4. after=N (with count=1) fires on the N+1th hit of the
		// site, so the plans below pin kills to specific saves.
		{"decode-mid-frontend", "seed=1; frontend.decode:panic:every=1,after=150,count=1"},
		{"extract-save-prepublish", "seed=1; checkpoint.save.prepublish:panic:every=1,after=2,count=1"},
		{"extract-save-postpublish", "seed=1; checkpoint.save.postpublish:panic:every=1,after=4,count=1"},
		{"dba-sweep-prepublish", "seed=1; checkpoint.save.prepublish:panic:every=1,after=10,count=1"},
		{"pre-fusion-postpublish", "seed=1; checkpoint.save.postpublish:panic:every=1,after=14,count=1"},
	}
	want := golden(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			runKilled(t, dir, tc.plan)

			ck, store := openCK(t, dir)
			if tc.name != "decode-mid-frontend" && store.Generation() == 0 {
				t.Fatal("killed run left no checkpoint generations to resume from")
			}
			got := renderRun(t, ck)
			if got != want {
				t.Fatalf("resumed output differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", want, got)
			}
		})
	}
}

// TestResumeFromCorruptNewestGeneration damages the newest manifest of a
// completed run: Open must fall back to the previous generation and the
// rerun must still match the golden output exactly.
func TestResumeFromCorruptNewestGeneration(t *testing.T) {
	want := golden(t)
	dir := t.TempDir()
	ck, _ := openCK(t, dir)
	if got := renderRun(t, ck); got != want {
		t.Fatalf("checkpointed run differs from plain run\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	manifests, err := filepath.Glob(filepath.Join(dir, "MANIFEST-*.json"))
	if err != nil || len(manifests) < 2 {
		t.Fatalf("need ≥2 generations, have %d (%v)", len(manifests), err)
	}
	newest := manifests[len(manifests)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, store := openCK(t, dir)
	if store.FellBack() < 1 {
		t.Fatalf("fellBack=%d, want ≥1", store.FellBack())
	}
	if store.Generation() == 0 {
		t.Fatal("no intact generation survived")
	}
	if got := renderRun(t, ck2); got != want {
		t.Fatalf("fallback run differs from golden\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestFullyCheckpointedRerunIsIdentical reruns on a complete checkpoint
// directory: every phase restores, nothing recomputes, same bytes out.
func TestFullyCheckpointedRerunIsIdentical(t *testing.T) {
	want := golden(t)
	dir := t.TempDir()
	ck, _ := openCK(t, dir)
	if got := renderRun(t, ck); got != want {
		t.Fatal("first checkpointed run differs from plain run")
	}
	ck2, store := openCK(t, dir)
	gen := store.Generation()
	if gen == 0 {
		t.Fatal("no generations after a full run")
	}
	if got := renderRun(t, ck2); got != want {
		t.Fatal("fully-checkpointed rerun differs from golden")
	}
	if store.Generation() != gen {
		t.Fatalf("fully-cached rerun published %d new generations", store.Generation()-gen)
	}
}

// TestIterativeResumeBitIdentical kills a multi-round iterative-DBA run
// between rounds and resumes it through the experiments-layer round
// checkpoints.
func TestIterativeResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline build is slow; internal/dba covers the hook in short mode")
	}
	// Reference: plain pipeline, no checkpoints.
	p, err := BuildPipelineCK(ScaleTiny, resumeSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := p.IterativeReport(p.IterativeDBA(3, dba.M2, 3))

	dir := t.TempDir()
	// Build the pipeline once so round checkpoints are the only thing the
	// killed run persists beyond phase state.
	func() {
		plan, err := faultinject.ParsePlan("seed=1; checkpoint.save.prepublish:panic:every=1,after=9,count=1")
		if err != nil {
			t.Fatal(err)
		}
		restore := faultinject.Enable(plan)
		defer restore()
		defer func() {
			if recover() == nil {
				t.Fatal("iterative kill plan did not fire")
			}
		}()
		ck, _ := openCK(t, dir)
		kp, err := BuildPipelineCK(ScaleTiny, resumeSeed, ck)
		if err != nil {
			t.Fatal(err)
		}
		kp.IterativeReport(kp.IterativeDBA(3, dba.M2, 3))
	}()

	ck, store := openCK(t, dir)
	if store.Generation() == 0 {
		t.Fatal("killed iterative run checkpointed nothing")
	}
	rp, err := BuildPipelineCK(ScaleTiny, resumeSeed, ck)
	if err != nil {
		t.Fatal(err)
	}
	got := rp.IterativeReport(rp.IterativeDBA(3, dba.M2, 3))
	if got != ref {
		t.Fatalf("resumed iterative report differs\n--- want ---\n%s\n--- got ---\n%s", ref, got)
	}
}

// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (Section 5) on the synthetic LRE09
// substitute corpus: Table 1 (T_DBA composition vs V), Tables 2–3 (DBA-M1
// and DBA-M2 EER/Cavg sweeps per front-end and duration), Table 4
// (baseline vs DBA with LDA-MMI fusion), Table 5 (real-time factors), and
// Fig. 3 (DET curves). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/cascade"
	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/frontend"
	"repro/internal/fusion"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/svm"
	"repro/internal/synthlang"
	"repro/internal/vsm"
)

// Scale selects corpus sizes; every scale runs the identical code path.
type Scale int

// Scales: Tiny is for unit tests (seconds), Small for CI-style runs,
// Medium for the command-line driver, Full for paper-proportioned runs.
const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleMedium
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale converts a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q", s)
}

// CorpusConfig returns the corpus sizing for a scale.
func CorpusConfig(s Scale, seed uint64) corpus.Config {
	cfg := corpus.DefaultConfig()
	cfg.Seed = seed
	switch s {
	case ScaleTiny:
		cfg.TrainPerLang = 8
		cfg.DevPerLang = 4
		cfg.TestPerLang = 4
	case ScaleSmall:
		cfg.TrainPerLang = 20
		cfg.DevPerLang = 8
		cfg.TestPerLang = 8
	case ScaleMedium:
		cfg.TrainPerLang = 40
		cfg.DevPerLang = 12
		cfg.TestPerLang = 20
	case ScaleFull:
		cfg.TrainPerLang = 90
		cfg.DevPerLang = 20
		cfg.TestPerLang = 30
	}
	return cfg
}

// Pipeline holds the shared state of an experiment run: corpus, cached
// per-front-end supervectors, baseline models, and memoized DBA outcomes.
// Decoding happens exactly once (the paper's cost argument), and every
// table draws on the same pipeline.
type Pipeline struct {
	Scale Scale
	Seed  uint64

	Corpus *corpus.Corpus
	FEs    []*frontend.FrontEnd
	Feats  []*vsm.Features

	// Data[q] carries train (train split) and test (pooled 30/10/3 s)
	// supervectors for DBA.
	Data        []*dba.SubsystemData
	TrainLabels []int
	DevLabels   []int // pooled dev (30, 10, 3 s order)
	TestLabels  []int
	// TestIdx/DevIdx[dur] are pooled indices belonging to a duration tier.
	TestIdx map[float64][]int
	DevIdx  map[float64][]int

	Baseline       []*svm.OneVsRest
	BaselineScores [][][]float64 // [q][j][k] over pooled test (raw, for eval)
	VoteScores     [][][]float64 // calibrated copy driving Eq. 13 voting
	BaselineDev    [][][]float64 // [q][i][k] over dev

	SVMOptions svm.Options

	// ck is the (possibly nil) checkpoint hookup; all uses are nil-safe.
	ck *Checkpointer

	mu       sync.Mutex
	outcomes map[outcomeKey]*dba.Outcome

	// Cascade state (internal/cascade): the designated front-end's 1-best
	// decodes and the trained tier-1 model, both memoized — BuildBundle,
	// the golden table, and the bench share one model. fusionBk memoizes
	// the dev-trained fusion backend BuildBundle ships (the heavy path's
	// decision scorer, also needed for cascade calibration).
	cascadeMu      sync.Mutex
	cascadeSeq     *cascadeSeqs
	cascadeModelMu sync.Mutex
	cascadeModel   *cascade.Model
	fusionMu       sync.Mutex
	fusionTrained  bool
	fusionBk       *fusion.Backend
}

type outcomeKey struct {
	v      int
	method dba.Method
}

// NumLangs is the closed-set size of every pipeline.
const NumLangs = synthlang.NumLanguages

// BuildPipeline generates the corpus, extracts supervectors for all six
// front-ends, and trains the baseline subsystems.
func BuildPipeline(scale Scale, seed uint64) *Pipeline {
	p, err := BuildPipelineCK(scale, seed, nil)
	if err != nil {
		// Without a checkpointer the only error source is extraction's
		// quarantine overflow, which Extract historically panicked on.
		panic(err)
	}
	return p
}

// BuildPipelineCK is BuildPipeline with checkpoint/resume: when ck is
// non-nil, each phase (per-front-end extraction, baseline training,
// baseline scoring) first tries its checkpoint and saves one after
// computing. Resumed phases are bit-identical to computed ones — gob
// round-trips float64 exactly, and everything derived (vote calibration,
// duration indices) is recomputed deterministically. The error return
// surfaces per-utterance quarantine overflow (see vsm.ExtractChecked).
func BuildPipelineCK(scale Scale, seed uint64, ck *Checkpointer) (*Pipeline, error) {
	sp := obs.StartSpan("pipeline.build")
	defer sp.End()
	sp.SetLabel("scale", scale.String())
	sp.SetAttr("seed", float64(seed))

	p := &Pipeline{
		Scale:      scale,
		Seed:       seed,
		SVMOptions: vsm.DefaultSVMOptions(),
		ck:         ck,
		outcomes:   make(map[outcomeKey]*dba.Outcome),
		TestIdx:    make(map[float64][]int),
		DevIdx:     make(map[float64][]int),
	}
	p.SVMOptions.Seed = seed
	corpusSp := sp.StartChild("corpus")
	p.Corpus = corpus.Build(CorpusConfig(scale, seed))
	corpusSp.SetAttr("train", float64(p.Corpus.Train.Len()))
	corpusSp.End()
	p.FEs = frontend.StandardSix(seed)

	// Supervector extraction decodes every utterance through every
	// front-end — the pipeline's dominant cost. Each front-end gets its own
	// child span (they extract concurrently, so siblings overlap in time).
	// With a checkpointer, a front-end whose snapshot verifies is restored
	// instead of re-decoded; Store.Save serializes internally, so the
	// parallel loop can checkpoint each front-end as it finishes.
	extractSp := sp.StartChild("extract")
	p.Feats = make([]*vsm.Features, len(p.FEs))
	extractErrs := make([]error, len(p.FEs))
	parallel.For(len(p.FEs), func(q int) {
		fe := p.FEs[q]
		feSp := extractSp.StartChild("extract." + fe.Name)
		defer feSp.End()
		key := "features-" + fe.Name
		var snap vsm.FeaturesSnapshot
		if ck.load(key, &snap) {
			if f, err := vsm.RestoreFeatures(fe, &snap); err == nil && featuresCover(f, p.Corpus) {
				p.Feats[q] = f
				feSp.SetLabel("source", "checkpoint")
				feSp.SetAttr("dim", float64(f.Dim()))
				obs.Inc("checkpoint.features.restored")
				return
			} else if err != nil {
				log.Printf("experiments: checkpoint %q does not fit this run, recomputing: %v", key, err)
				obs.Inc("checkpoint.recompute")
			} else {
				log.Printf("experiments: checkpoint %q misses utterances of this corpus, recomputing", key)
				obs.Inc("checkpoint.recompute")
			}
		}
		f, err := vsm.ExtractChecked(fe, p.Corpus, vsm.ExtractOptions{Seed: seed})
		if err != nil {
			extractErrs[q] = err
			return
		}
		p.Feats[q] = f
		feSp.SetAttr("dim", float64(f.Dim()))
		ck.save(key, f.Snapshot())
	})
	extractSp.End()
	for _, err := range extractErrs {
		if err != nil {
			return nil, err
		}
	}

	pooled := p.Corpus.AllTest()
	p.TrainLabels = p.Corpus.Train.Labels()
	p.DevLabels = p.Corpus.AllDev().Labels()
	p.TestLabels = pooled.Labels()
	// Duration tiers index into the pooled order (30, 10, 3).
	testOff, devOff := 0, 0
	for _, dur := range corpus.Durations {
		n := p.Corpus.Test[dur].Len()
		idx := make([]int, n)
		for i := range idx {
			idx[i] = testOff + i
		}
		p.TestIdx[dur] = idx
		testOff += n

		dn := p.Corpus.Dev[dur].Len()
		didx := make([]int, dn)
		for i := range didx {
			didx[i] = devOff + i
		}
		p.DevIdx[dur] = didx
		devOff += dn
	}

	p.Data = make([]*dba.SubsystemData, len(p.FEs))
	for q, f := range p.Feats {
		p.Data[q] = &dba.SubsystemData{
			Name:  p.FEs[q].Name,
			Dim:   f.Dim(),
			Train: f.Vectors(p.Corpus.Train),
			Test:  f.Vectors(pooled),
		}
	}

	// Baseline phase: models and their raw test/dev score matrices are
	// checkpointed as a pair — restoring models without their scores (or
	// vice versa) would split one phase across two generations.
	var baseline []*svm.OneVsRest
	var ss scoresSnap
	if ck.load("baseline", &baseline) && ck.load("baseline-scores", &ss) &&
		len(baseline) == len(p.Data) && len(ss.Test) == len(p.Data) && len(ss.Dev) == len(p.Data) {
		p.Baseline = baseline
		p.BaselineScores = ss.Test
		p.BaselineDev = ss.Dev
		obs.Inc("checkpoint.baseline.restored")
	} else {
		trainSp := sp.StartChild("train-baseline")
		p.Baseline = dba.TrainBaseline(p.Data, p.TrainLabels, NumLangs, p.SVMOptions)
		trainSp.SetAttr("subsystems", float64(len(p.Data)))
		trainSp.End()
		scoreSp := sp.StartChild("score-baseline")
		p.BaselineScores = dba.ScoreAll(p.Baseline, p.Data)
		scoreSp.End()
		devSp := sp.StartChild("dev-score")
		p.BaselineDev = p.DevScores(p.Baseline)
		devSp.End()
		ck.save("baseline", p.Baseline)
		ck.save("baseline-scores", &scoresSnap{Test: p.BaselineScores, Dev: p.BaselineDev})
	}

	// Vote calibration: the Eq. 13 criterion (target > 0, all others < 0)
	// needs each language model's zero to sit at a sensible detection
	// operating point, which raw one-vs-rest SVM scores do not guarantee
	// (the 1-vs-22 imbalance biases them negative, and score ranges shrink
	// with utterance duration). The paper calibrates single-system scores
	// (Section 4.1, LDA-MMI); we use the scalar equivalent: per-model,
	// per-duration thresholds placed at a low dev false-alarm rate, shrunk
	// toward the subsystem-pooled threshold when the dev set is small. The
	// calibrated copy drives voting only — EER/Cavg are computed from the
	// unshifted scores, keeping evaluation and selection concerns separate.
	calSp := sp.StartChild("vote-calibrate")
	p.VoteScores = p.calibratedVoteScores()
	calSp.End()
	return p, nil
}

// VoteCalibrationFA is the dev false-alarm rate at which vote thresholds
// are placed. Lower values make votes rarer but cleaner; 3 % reproduces
// the paper's Table 1 selection/error trade-off.
const VoteCalibrationFA = 0.03

// calibratedVoteScores returns a copy of the baseline test scores with
// per-(subsystem, duration, model) dev thresholds subtracted.
func (p *Pipeline) calibratedVoteScores() [][][]float64 {
	out := make([][][]float64, len(p.BaselineScores))
	for q, mat := range p.BaselineScores {
		out[q] = make([][]float64, len(mat))
		for _, dur := range corpus.Durations {
			shifts := voteShiftsForTier(p.BaselineDev[q], p.DevLabels, p.DevIdx[dur], VoteCalibrationFA)
			for _, j := range p.TestIdx[dur] {
				row := mat[j]
				nr := make([]float64, len(row))
				for k, v := range row {
					nr[k] = v - shifts[k]
				}
				out[q][j] = nr
			}
		}
	}
	return out
}

// voteShiftsForTier computes per-model vote thresholds from one duration
// tier of a subsystem's dev scores: the score at dev false-alarm rate fa,
// shrunk toward the tier-pooled threshold in proportion to the per-model
// target count.
func voteShiftsForTier(devMat [][]float64, devLabels []int, tierIdx []int, fa float64) []float64 {
	if len(tierIdx) == 0 || len(devMat) == 0 {
		return nil
	}
	k := len(devMat[0])
	shifts := make([]float64, k)
	var pooled []metrics.Trial
	for _, i := range tierIdx {
		for model, s := range devMat[i] {
			pooled = append(pooled, metrics.Trial{Score: s, Target: devLabels[i] == model})
		}
	}
	pooledTh := metrics.ThresholdAtFA(pooled, fa)
	for model := 0; model < k; model++ {
		trials := make([]metrics.Trial, 0, len(tierIdx))
		nTar := 0
		for _, i := range tierIdx {
			target := devLabels[i] == model
			if target {
				nTar++
			}
			trials = append(trials, metrics.Trial{Score: devMat[i][model], Target: target})
		}
		th := metrics.ThresholdAtFA(trials, fa)
		// Shrinkage: few dev targets → trust the pooled threshold.
		w := float64(nTar) / (float64(nTar) + 8)
		shifts[model] = pooledTh + w*(th-pooledTh)
	}
	return shifts
}

// DBAOutcome runs (or returns the memoized) DBA pass for a threshold and
// method. With a checkpoint store attached, a completed pass is restored
// from disk instead of retrained: the snapshot stores the pass's products
// (selection, retrained models, second-pass scores) and the vote tally is
// recomputed from the pipeline's calibrated scores, which is bit-identical
// integer counting.
func (p *Pipeline) DBAOutcome(v int, method dba.Method) *dba.Outcome {
	key := outcomeKey{v: v, method: method}
	p.mu.Lock()
	if o, ok := p.outcomes[key]; ok {
		p.mu.Unlock()
		return o
	}
	p.mu.Unlock()
	ckKey := fmt.Sprintf("dba-v%d-%s", v, method)
	var snap dbaSnap
	if p.ck.load(ckKey, &snap) && len(snap.Retrained) == len(p.Data) {
		o := &dba.Outcome{
			BaselineScores: p.VoteScores,
			Votes:          dba.CountVotes(p.VoteScores),
			Selected:       snap.Selected,
			Retrained:      snap.Retrained,
			Scores:         snap.Scores,
		}
		obs.Inc("checkpoint.dba.restored")
		p.mu.Lock()
		p.outcomes[key] = o
		p.mu.Unlock()
		return o
	}
	o := dba.Run(p.Data, p.TrainLabels, p.Baseline, p.VoteScores, dba.Config{
		Threshold:  v,
		Method:     method,
		NumLangs:   NumLangs,
		SVMOptions: p.SVMOptions,
	})
	if len(o.Selected) == 0 {
		// Degenerate fallback: evaluation should see the raw baseline
		// scores, not the vote-calibrated copy dba.Run echoes back.
		o.Scores = p.BaselineScores
	}
	p.ck.save(ckKey, &dbaSnap{Selected: o.Selected, Retrained: o.Retrained, Scores: o.Scores})
	p.mu.Lock()
	p.outcomes[key] = o
	p.mu.Unlock()
	return o
}

// DevScores scores the dev split with a set of per-subsystem models (for
// fusion backend training on second-pass systems).
func (p *Pipeline) DevScores(models []*svm.OneVsRest) [][][]float64 {
	out := make([][][]float64, len(models))
	for q, mdl := range models {
		devVecs := p.Feats[q].Vectors(p.Corpus.AllDev())
		out[q] = mdl.ScoreAll(devVecs)
	}
	return out
}

// Eval computes EER and minimum Cavg (both in percent) of one subsystem's
// pooled score matrix restricted to the given test indices.
func Eval(scoreMat [][]float64, labels []int, idx []int) (eerPct, cavgPct float64) {
	var pairs []metrics.PairTrial
	for _, j := range idx {
		for k, s := range scoreMat[j] {
			pairs = append(pairs, metrics.PairTrial{Model: k, True: labels[j], Score: s})
		}
	}
	eer := metrics.EER(metrics.PairTrialsToDetection(pairs))
	cavg, _ := metrics.MinCavg(pairs, NumLangs)
	return eer * 100, cavg * 100
}

// TrialsFor builds the pooled detection trials of a score matrix subset
// (for DET curves).
func TrialsFor(scoreMat [][]float64, labels []int, idx []int) []metrics.Trial {
	var pairs []metrics.PairTrial
	for _, j := range idx {
		for k, s := range scoreMat[j] {
			pairs = append(pairs, metrics.PairTrial{Model: k, True: labels[j], Score: s})
		}
	}
	return metrics.PairTrialsToDetection(pairs)
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/frontend"
	"repro/internal/lattice"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

// Table5 reproduces paper Table 5: real-time factors of the pipeline
// stages for the HU front-end on 30 s test utterances, PPRVSM vs DBA.
// Decoding runs the genuine acoustic path (waveform → features → hybrid
// MLP-HMM Viterbi → confusion lattice), so the decode RTF is a real
// measurement, not a simulation artifact.
//
// Every stage is timed by an obs span ("table5" → "decode",
// "supervector-gen", "svm-score", "dba"), and the table's RTFs are derived
// from those span durations — the serialized trace and the printed table
// agree by construction. Each stage span carries "rtf" and
// "audio_seconds" attributes so the trace alone suffices to rebuild the
// table.
type Table5 struct {
	Rows []Table5Row
	// Note records the one structural difference from the paper's
	// implementation (supervector caching).
	Note string
}

// Table5Row is one system's real-time factors (processing seconds per
// second of audio).
type Table5Row struct {
	System                string
	Decode, SVGen, SVProd float64
}

// Table5Config sizes the timing run.
type Table5Config struct {
	Seed          uint64
	NumUtterances int
	UtteranceDurS float64
	InventorySize int
}

// DefaultTable5Config mirrors the paper's setting (HU front-end, 30 s
// test) at a size that runs in seconds.
func DefaultTable5Config() Table5Config {
	return Table5Config{Seed: 42, NumUtterances: 3, UtteranceDurS: 30, InventorySize: 59}
}

// RunTable5 measures the stage timings.
func RunTable5(cfg Table5Config) (*Table5, error) {
	root := obs.StartSpan("table5")
	defer root.End()

	setupSp := root.StartChild("setup")
	langs := synthlang.Generate(synthlang.DefaultConfig(), cfg.Seed)
	acfg := frontend.DefaultAcousticConfig("HU", frontend.ANNHMM, cfg.InventorySize, cfg.Seed)
	acfg.TrainUtterances = 12
	acfg.UtteranceDurS = 4
	acfg.HiddenLayers = []int{48}
	acfg.TrainEpochs = 4
	fe, err := frontend.TrainAcoustic(acfg, langs[:4])
	if err != nil {
		setupSp.End()
		return nil, err
	}

	root2 := rng.New(cfg.Seed)
	synth := synthspeech.New()
	var audioSeconds float64
	var wavs [][]float64
	for i := 0; i < cfg.NumUtterances; i++ {
		r := root2.Split(uint64(i) + 77)
		spk := synthlang.NewSpeaker(r, i)
		u := langs[i%len(langs)].Sample(r, cfg.UtteranceDurS, spk, synthlang.ChannelCTSClean)
		wav := synth.Render(r, u)
		wavs = append(wavs, wav)
		audioSeconds += float64(len(wav)) / synthspeech.SampleRate
	}
	setupSp.End()
	root.SetAttr("audio_seconds", audioSeconds)

	rtfAttrs := func(sp *obs.Span, rtf float64) {
		sp.SetAttr("audio_seconds", audioSeconds)
		sp.SetAttr("rtf", rtf)
	}

	// Decode stage. The span is ended first and the RTF derived from the
	// recorded duration, so the serialized trace and the printed table are
	// the same measurement.
	var lats []*lattice.Lattice
	decSp := root.StartChild("decode")
	for _, wav := range wavs {
		lats = append(lats, fe.DecodeAudio(wav))
	}
	decodeRTF := decSp.End().Seconds() / audioSeconds
	decSp.SetAttr("utterances", float64(len(wavs)))
	rtfAttrs(decSp, decodeRTF)

	// Supervector generation stage.
	space := ngram.NewSpace(cfg.InventorySize, frontend.NgramOrder)
	var vecs []*sparse.Vector
	svSp := root.StartChild("supervector-gen")
	for _, l := range lats {
		vecs = append(vecs, space.Supervector(l))
	}
	svGenRTF := svSp.End().Seconds() / audioSeconds
	svSp.SetAttr("dim", float64(space.Dim()))
	rtfAttrs(svSp, svGenRTF)

	// Supervector product stage: one-vs-rest scoring against 23 language
	// models (trained quickly on jittered copies of the test vectors; the
	// product cost depends only on model dimensionality and vector
	// sparsity, not on training quality).
	trainSp := root.StartChild("svm-train")
	trainVecs := make([]*sparse.Vector, 0, 46)
	labels := make([]int, 0, 46)
	jr := rng.New(cfg.Seed + 99)
	for i := 0; i < 46; i++ {
		v := vecs[i%len(vecs)].Clone()
		v.Map(func(_ int32, val float64) float64 { return val * (1 + 0.1*jr.Norm()) })
		trainVecs = append(trainVecs, v)
		labels = append(labels, i%NumLangs)
	}
	opt := svm.DefaultOptions()
	opt.MaxIters = 5
	ovr := svm.TrainOneVsRest(trainVecs, labels, NumLangs, space.Dim(), opt)
	trainSp.End()

	// Repeat the product enough times to measure reliably.
	const reps = 50
	scoreOnce := func() {
		for _, v := range vecs {
			ovr.Scores(v)
		}
	}
	prodSp := root.StartChild("svm-score")
	for rep := 0; rep < reps; rep++ {
		scoreOnce()
	}
	svProdRTF := prodSp.End().Seconds() / (audioSeconds * reps)
	prodSp.SetAttr("reps", reps)
	rtfAttrs(prodSp, svProdRTF)

	// DBA stage: one boosting round's added cost. Decoding and supervector
	// generation are shared with the baseline pass (the cached vectors are
	// reused), so the round reduces to a second scoring pass — measured
	// here for the trace; the table reports the paper's structural 2×
	// (Eq. 18) from the baseline measurement.
	dbaSp := root.StartChild("dba")
	roundSp := dbaSp.StartChild("dba.round-1")
	pass2Sp := roundSp.StartChild("svm-score")
	for rep := 0; rep < reps; rep++ {
		scoreOnce()
	}
	pass2RTF := pass2Sp.End().Seconds() / (audioSeconds * reps)
	pass2Sp.SetAttr("reps", reps)
	rtfAttrs(pass2Sp, pass2RTF)
	roundSp.End()
	rtfAttrs(roundSp, svProdRTF+pass2RTF)
	dbaSp.End()

	return &Table5{
		Rows: []Table5Row{
			{System: "PPRVSM", Decode: decodeRTF, SVGen: svGenRTF, SVProd: svProdRTF},
			// DBA decodes once (shared with the baseline pass), reuses the
			// cached supervectors, and scores the test set twice (baseline
			// pass + retrained pass) — Eq. 18.
			{System: "DBA", Decode: decodeRTF, SVGen: svGenRTF, SVProd: 2 * svProdRTF},
		},
		Note: "DBA reuses cached supervectors (gen ×1); the paper's implementation regenerated them (×~3). Both agree that decoding dominates and the DBA/PPRVSM total ratio ≈ 1 (Eq. 19).",
	}, nil
}

// String renders Table 5.
func (t *Table5) String() string {
	var b strings.Builder
	b.WriteString("Table 5: real-time factors, HU front-end, 30s test (seconds of compute per second of audio)\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %12s\n", "System", "Decoding", "SV gen.", "SV prod.")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-8s %10.4f %12.3e %12.3e\n", r.System, r.Decode, r.SVGen, r.SVProd)
	}
	fmt.Fprintf(&b, "note: %s\n", t.Note)
	return b.String()
}

package experiments

import (
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dba"
)

// Golden end-to-end regression: the medium-scale seed-42 run is pinned
// against results_medium_seed42.txt at the repo root. The pipeline is
// deterministic by construction (seeded splitmix64 streams, fixed
// iteration order), so any drift here means a semantic change to the
// modeling path, not noise.
//
// Tolerance: numeric tokens must agree within 0.05 absolute — half a
// display unit of the %.2f percentage rendering, which also absorbs
// last-ulp float differences across platforms (e.g. FMA contraction on
// arm64). Counts (|T_DBA| sizes, per-duration splits) are integers, so
// the same tolerance pins them exactly. Non-numeric tokens must match
// byte-for-byte.
//
// Pinned sections: Table 1, Table 2 (the full DBA-M1 sweep), Table 4 with
// its headline, and the vote ablation. Table 3 is the same sweep machinery
// as Table 2 with method M2 and its V=3 column is already covered through
// Table 4's DBA fusion, so it is skipped to keep the test's runtime
// bounded. Table 5 (real-time factors) and Fig. 3 are machine-dependent /
// derived and are never pinned.

const goldenTolerance = 0.05

func goldenSection(t *testing.T, golden []string, firstLine string, n int) []string {
	t.Helper()
	for i, line := range golden {
		if line == firstLine {
			if i+n > len(golden) {
				t.Fatalf("golden section %q truncated: need %d lines, have %d", firstLine, n, len(golden)-i)
			}
			return golden[i : i+n]
		}
	}
	t.Fatalf("golden file has no line %q", firstLine)
	return nil
}

// compareTokens checks got against want line-by-line: tokens are split on
// whitespace and "/" (for the EER/Cavg and 30s/10s/3s composites), "%" is
// stripped, and anything that parses as a float on both sides is compared
// within goldenTolerance; everything else must match exactly.
func compareTokens(t *testing.T, section string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rendered %d lines, golden has %d", section, len(got), len(want))
	}
	for li := range want {
		gt := strings.FieldsFunc(got[li], func(r rune) bool { return r == ' ' || r == '\t' || r == '/' })
		wt := strings.FieldsFunc(want[li], func(r rune) bool { return r == ' ' || r == '\t' || r == '/' })
		if len(gt) != len(wt) {
			t.Fatalf("%s line %d: %d tokens vs golden %d\n got: %q\nwant: %q", section, li+1, len(gt), len(wt), got[li], want[li])
		}
		for ti := range wt {
			g := strings.TrimSuffix(gt[ti], "%")
			w := strings.TrimSuffix(wt[ti], "%")
			gf, gerr := strconv.ParseFloat(g, 64)
			wf, werr := strconv.ParseFloat(w, 64)
			if gerr == nil && werr == nil {
				if math.Abs(gf-wf) > goldenTolerance {
					t.Errorf("%s line %d token %d: %v, golden %v (|Δ| > %v)\n got: %q\nwant: %q",
						section, li+1, ti+1, gf, wf, goldenTolerance, got[li], want[li])
				}
				continue
			}
			if g != w {
				t.Errorf("%s line %d token %d: %q, golden %q\n got: %q\nwant: %q",
					section, li+1, ti+1, gt[ti], wt[ti], got[li], want[li])
			}
		}
	}
}

func TestGoldenMediumSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale pipeline (~1 min): skipped in -short")
	}
	data, err := os.ReadFile("../../results_medium_seed42.txt")
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	golden := strings.Split(strings.TrimRight(string(data), "\n"), "\n")

	p := BuildPipeline(ScaleMedium, 42)

	check := func(section, rendered string) {
		t.Helper()
		lines := strings.Split(strings.TrimRight(rendered, "\n"), "\n")
		want := goldenSection(t, golden, lines[0], len(lines))
		compareTokens(t, section, lines, want)
	}
	check("Table 1", RunTable1(p).String())
	check("Table 2", RunTableDBA(p, dba.M1).String())
	t4 := RunTable4(p, 3)
	check("Table 4", t4.String())
	check("Headline", t4.Summary())
	check("Vote ablation", RunVoteAblation(p, 3).String())
}

// TestGoldenCascadeMediumSeed42 pins the cascade tradeoff table (exit
// fraction, tier-1 exit accuracy, and EER per duration tier at the
// default threshold) next to the paper tables — the committed operating
// point the BENCH_cascade.json acceptance numbers come from. Same
// tolerance contract as TestGoldenMediumSeed42: ±0.05 on numeric tokens.
func TestGoldenCascadeMediumSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale pipeline (~1 min): skipped in -short")
	}
	data, err := os.ReadFile("../../results_medium_seed42.txt")
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	golden := strings.Split(strings.TrimRight(string(data), "\n"), "\n")

	p := BuildPipeline(ScaleMedium, 42)
	tb, err := p.RunCascadeTable()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	want := goldenSection(t, golden, lines[0], len(lines))
	compareTokens(t, "Cascade", lines, want)
}

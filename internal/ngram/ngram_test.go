package ngram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestSpaceDim(t *testing.T) {
	s := NewSpace(43, 2)
	if s.Dim() != 43+43*43 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	s3 := NewSpace(10, 3)
	if s3.Dim() != 10+100+1000 {
		t.Fatalf("order-3 Dim = %d", s3.Dim())
	}
}

func TestIndexDecodeRoundTrip(t *testing.T) {
	s := NewSpace(7, 3)
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(3) + 1
		gram := make([]int, n)
		for i := range gram {
			gram[i] = rr.Intn(7)
		}
		idx := s.Index(gram)
		if idx < 0 || int(idx) >= s.Dim() {
			return false
		}
		back := s.Decode(idx)
		if len(back) != n {
			return false
		}
		for i := range gram {
			if back[i] != gram[i] {
				return false
			}
		}
		return s.OrderOf(idx) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexUnique(t *testing.T) {
	s := NewSpace(5, 2)
	seen := make(map[int32]bool)
	for a := 0; a < 5; a++ {
		if idx := s.Index([]int{a}); seen[idx] {
			t.Fatal("duplicate unigram index")
		} else {
			seen[idx] = true
		}
		for b := 0; b < 5; b++ {
			if idx := s.Index([]int{a, b}); seen[idx] {
				t.Fatal("duplicate bigram index")
			} else {
				seen[idx] = true
			}
		}
	}
	if len(seen) != s.Dim() {
		t.Fatalf("covered %d of %d indices", len(seen), s.Dim())
	}
}

func TestIndexPanics(t *testing.T) {
	s := NewSpace(5, 2)
	for _, gram := range [][]int{{}, {1, 2, 3}, {5}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index accepted %v", gram)
				}
			}()
			s.Index(gram)
		}()
	}
}

func TestSupervectorFromString(t *testing.T) {
	// Phone string 0 1 0: unigrams {0:2/3, 1:1/3}; bigrams {01:1/2, 10:1/2}.
	s := NewSpace(3, 2)
	l := lattice.FromString([]int{0, 1, 0})
	v := s.Supervector(l)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := v.At(s.Index([]int{0})); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("p(0) = %v", got)
	}
	if got := v.At(s.Index([]int{1})); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("p(1) = %v", got)
	}
	if got := v.At(s.Index([]int{0, 1})); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("p(01) = %v", got)
	}
	if got := v.At(s.Index([]int{1, 0})); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("p(10) = %v", got)
	}
	if got := v.At(s.Index([]int{1, 1})); got != 0 {
		t.Fatalf("p(11) = %v", got)
	}
}

func TestSupervectorOrderBlocksSumToOne(t *testing.T) {
	s := NewSpace(4, 2)
	slots := []lattice.SausageSlot{
		{{Phone: 0, Prob: 0.5}, {Phone: 1, Prob: 0.5}},
		{{Phone: 2, Prob: 0.7}, {Phone: 3, Prob: 0.3}},
		{{Phone: 1, Prob: 1.0}},
	}
	v := s.Supervector(lattice.FromSausage(slots))
	sums := make([]float64, 2)
	for k, idx := range v.Idx {
		sums[s.OrderOf(idx)-1] += v.Val[k]
	}
	for n, sum := range sums {
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("order-%d block sums to %v", n+1, sum)
		}
	}
}

func TestSupervectorLatticeVsOneBest(t *testing.T) {
	// A sausage with a dominant path should give a supervector close to,
	// but smoother than, the 1-best string's.
	s := NewSpace(4, 2)
	slots := []lattice.SausageSlot{
		{{Phone: 0, Prob: 0.9}, {Phone: 1, Prob: 0.1}},
		{{Phone: 2, Prob: 0.9}, {Phone: 3, Prob: 0.1}},
	}
	vl := s.Supervector(lattice.FromSausage(slots))
	vs := s.Supervector(lattice.FromString([]int{0, 2}))
	dot := sparse.Dot(vl, vs)
	if dot <= 0 {
		t.Fatal("lattice and 1-best supervectors orthogonal")
	}
	// Lattice vector must contain mass on the alternative bigram (1,3).
	if vl.At(s.Index([]int{1, 3})) <= 0 {
		t.Fatal("lattice alternatives lost")
	}
	if vs.At(s.Index([]int{1, 3})) != 0 {
		t.Fatal("1-best supervector has phantom mass")
	}
}

func TestTFLLRScaling(t *testing.T) {
	dim := 10
	// Background: index 0 frequent (p=0.9), index 1 rare (p=0.1).
	bg := []*sparse.Vector{
		sparse.FromMap(map[int32]float64{0: 0.9, 1: 0.1}),
	}
	tf := EstimateTFLLR(bg, dim, 1e-5)
	if tf.Dim() != dim {
		t.Fatalf("Dim = %d", tf.Dim())
	}
	v := sparse.FromMap(map[int32]float64{0: 1, 1: 1})
	tf.Apply(v)
	// Rare grams get boosted more: 1/√0.1 > 1/√0.9.
	if v.At(1) <= v.At(0) {
		t.Fatalf("TFLLR did not upweight rare gram: %v vs %v", v.At(1), v.At(0))
	}
	if math.Abs(v.At(0)-1/math.Sqrt(0.9)) > 1e-9 {
		t.Fatalf("scale(0) = %v", v.At(0))
	}
}

func TestTFLLRKernelEqualsScaledDot(t *testing.T) {
	// Eq. 5: K(x,y) = Σ x_q·y_q / p_all_q equals dot of scaled vectors.
	dim := 6
	bgv := sparse.FromMap(map[int32]float64{0: 0.3, 1: 0.2, 2: 0.5})
	tf := EstimateTFLLR([]*sparse.Vector{bgv}, dim, 1e-5)
	x := sparse.FromMap(map[int32]float64{0: 0.5, 2: 0.5})
	y := sparse.FromMap(map[int32]float64{0: 0.25, 1: 0.25, 2: 0.5})
	// Direct kernel.
	var want float64
	for q := int32(0); q < int32(dim); q++ {
		p := bgv.At(q)
		if p < 1e-5 {
			p = 1e-5
		}
		want += x.At(q) * y.At(q) / p
	}
	xs, ys := x.Clone(), y.Clone()
	tf.Apply(xs)
	tf.Apply(ys)
	got := sparse.Dot(xs, ys)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("kernel mismatch: %v vs %v", got, want)
	}
}

func TestTFLLRUnseenFloor(t *testing.T) {
	tf := EstimateTFLLR(nil, 4, 1e-4)
	v := sparse.FromMap(map[int32]float64{3: 1})
	tf.Apply(v)
	if math.Abs(v.At(3)-100) > 1e-9 { // 1/√1e-4 = 100
		t.Fatalf("floor scale = %v", v.At(3))
	}
}

func TestNewSpaceOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted overflowing space")
		}
	}()
	NewSpace(64, 6) // 64^6 ≈ 6.9e10 > MaxInt32
}

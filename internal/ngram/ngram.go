// Package ngram turns lattice expected counts into phonotactic feature
// supervectors (paper Eq. 3) and implements the TFLLR kernel scaling
// (Eq. 5).
//
// A supervector over a front-end with f phones and maximum order N stacks
// the normalized expected counts of every n-gram for n = 1…N, giving
// dimension F = f + f² + … + f^N. The paper's VSM normalizes counts within
// each order (Eq. 2), so each order's block sums to one when any mass is
// present. TFLLR scales component q by 1/√p(d_q|ℓ_all), where p(d_q|ℓ_all)
// is the background probability of the n-gram across all training
// lattices; with that scaling a plain inner product equals the TFLLR
// kernel, which is how the linear SVM consumes it.
package ngram

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/lattice"
	"repro/internal/sparse"
)

// Space indexes all n-grams of order 1..Order over a phone inventory.
type Space struct {
	NumPhones int
	Order     int
	// offsets[n-1] is the first index of order-n grams.
	offsets []int32
	dim     int32
}

// NewSpace builds an n-gram index space. Order must be ≥ 1; dimension
// f + f² + … + f^Order must fit in int32.
func NewSpace(numPhones, order int) *Space {
	if numPhones <= 0 || order < 1 {
		panic("ngram: invalid space parameters")
	}
	s := &Space{NumPhones: numPhones, Order: order}
	var off int64
	for n := 1; n <= order; n++ {
		s.offsets = append(s.offsets, int32(off))
		block := int64(1)
		for i := 0; i < n; i++ {
			block *= int64(numPhones)
		}
		off += block
		if off > math.MaxInt32 {
			panic(fmt.Sprintf("ngram: space %d^%d overflows int32", numPhones, order))
		}
	}
	s.dim = int32(off)
	return s
}

// Dim returns the total supervector dimension.
func (s *Space) Dim() int { return int(s.dim) }

// Index maps an n-gram (1 ≤ len ≤ Order) to its supervector index.
func (s *Space) Index(gram []int) int32 {
	n := len(gram)
	if n < 1 || n > s.Order {
		panic(fmt.Sprintf("ngram: gram of length %d in order-%d space", n, s.Order))
	}
	idx := int32(0)
	for _, p := range gram {
		if p < 0 || p >= s.NumPhones {
			panic(fmt.Sprintf("ngram: phone %d out of range [0,%d)", p, s.NumPhones))
		}
		idx = idx*int32(s.NumPhones) + int32(p)
	}
	return s.offsets[n-1] + idx
}

// Decode inverts Index, returning the phone tuple for a supervector index.
func (s *Space) Decode(idx int32) []int {
	order := 1
	for order < s.Order && idx >= s.offsets[order] {
		order++
	}
	if order > 1 && idx < s.offsets[order-1] {
		order--
	}
	rel := idx - s.offsets[order-1]
	gram := make([]int, order)
	for i := order - 1; i >= 0; i-- {
		gram[i] = int(rel % int32(s.NumPhones))
		rel /= int32(s.NumPhones)
	}
	return gram
}

// OrderOf returns the n-gram order of a supervector index.
func (s *Space) OrderOf(idx int32) int {
	order := 1
	for order < s.Order && idx >= s.offsets[order] {
		order++
	}
	return order
}

// Supervector computes the stacked, per-order-normalized expected N-gram
// probability vector of a lattice (Eq. 2–3). The result is sparse; an
// utterance only populates the grams its lattice contains.
func (s *Space) Supervector(l *lattice.Lattice) *sparse.Vector {
	// Pooled accumulator + single forward–backward pass shared by all
	// orders: the count stream arrives order by order in the same
	// sequence as per-order ExpectedNgramCounts calls, so the per-index
	// and per-total addition chains (and hence the float results) are
	// bit-identical to the old path.
	acc := sparse.GetAccumulator()
	defer sparse.PutAccumulator(acc)
	// Per-order totals for normalization.
	totals := make([]float64, s.Order)
	l.ExpectedNgramCountsAll(s.Order, func(order int, gram []int, w float64) {
		if w <= 0 {
			return
		}
		acc.Add(s.Index(gram), w)
		totals[order-1] += w
	})
	v := acc.Vector()
	// Normalize each order block.
	v.Map(func(idx int32, val float64) float64 {
		t := totals[s.OrderOf(idx)-1]
		if t <= 0 {
			return 0
		}
		return val / t
	})
	return v
}

// TFLLR holds the background scaling of Eq. 5. Component q of a
// supervector is divided by √p(d_q|ℓ_all); unseen components use a floor
// probability so test-time grams absent from training do not explode.
type TFLLR struct {
	dim   int
	scale []float64 // multiplicative factor 1/√p_all, by index
}

// EstimateTFLLR accumulates background statistics from training
// supervectors. floorProb bounds the background probability from below
// (the paper's implementations use a small constant; 1e-5 here).
func EstimateTFLLR(vectors []*sparse.Vector, dim int, floorProb float64) *TFLLR {
	if floorProb <= 0 {
		floorProb = 1e-5
	}
	bg := make([]float64, dim)
	var total float64
	for _, v := range vectors {
		for k, idx := range v.Idx {
			if int(idx) < dim {
				bg[idx] += v.Val[k]
				total += v.Val[k]
			}
		}
	}
	t := &TFLLR{dim: dim, scale: make([]float64, dim)}
	for q := range t.scale {
		p := floorProb
		if total > 0 {
			if obs := bg[q] / total; obs > p {
				p = obs
			}
		}
		t.scale[q] = 1 / math.Sqrt(p)
	}
	return t
}

// Apply scales the supervector in place so that plain inner products
// compute the TFLLR kernel.
func (t *TFLLR) Apply(v *sparse.Vector) {
	v.Map(func(idx int32, val float64) float64 {
		if int(idx) >= t.dim {
			return val
		}
		return val * t.scale[idx]
	})
}

// Dim returns the space dimension the scaler was estimated for.
func (t *TFLLR) Dim() int { return t.dim }

// Scale returns the multiplicative factor for index q (exported for
// ablation benches comparing TFLLR against raw counts).
func (t *TFLLR) Scale(q int32) float64 { return t.scale[q] }

// tfllrWire is the gob wire format of TFLLR.
type tfllrWire struct {
	Dim   int
	Scale []float64
}

// GobEncode implements gob.GobEncoder.
func (t *TFLLR) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(tfllrWire{Dim: t.dim, Scale: t.scale})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (t *TFLLR) GobDecode(data []byte) error {
	var w tfllrWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	t.dim, t.scale = w.Dim, w.Scale
	return nil
}

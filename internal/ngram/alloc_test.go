package ngram

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/rng"
)

// benchSausage builds a deterministic confusion network with the rough
// shape of a 10-second utterance: ~100 slots, a few alternatives each.
func benchSausage(slots, alts, phones int) *lattice.Lattice {
	r := rng.New(17)
	ss := make([]lattice.SausageSlot, slots)
	for i := range ss {
		var slot lattice.SausageSlot
		for j := 0; j < alts; j++ {
			slot = append(slot, struct {
				Phone int
				Prob  float64
			}{Phone: r.Intn(phones), Prob: r.Float64() + 0.05})
		}
		ss[i] = slot
	}
	return lattice.FromSausage(ss)
}

// TestSupervectorAllocsFlat guards the gram-scratch and pooled-
// accumulator satellites: per-call allocation count must not scale with
// the number of grams emitted (no per-gram allocation, no per-order
// forward–backward buffers beyond one set).
func TestSupervectorAllocsFlat(t *testing.T) {
	s := NewSpace(20, 3)
	small := benchSausage(8, 2, 20)
	big := benchSausage(200, 4, 20)
	// Warm the accumulator pool so steady-state is measured.
	s.Supervector(big)

	allocsSmall := testing.AllocsPerRun(10, func() { s.Supervector(small) })
	allocsBig := testing.AllocsPerRun(10, func() { s.Supervector(big) })
	// The big lattice emits hundreds of times more grams than the small
	// one; allocations may differ by the output vector's size class and
	// occasional accumulator growth, but not proportionally.
	if allocsBig > allocsSmall+24 {
		t.Fatalf("Supervector allocations scale with gram count: small=%v big=%v",
			allocsSmall, allocsBig)
	}
	if allocsBig > 40 {
		t.Fatalf("Supervector allocates %v objects per call", allocsBig)
	}
}

func BenchmarkSupervector(b *testing.B) {
	s := NewSpace(59, 2)
	l := benchSausage(100, 3, 59)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		v := s.Supervector(l)
		if v.NNZ() == 0 {
			b.Fatal("empty supervector")
		}
	}
}

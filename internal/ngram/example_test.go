package ngram_test

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/ngram"
	"repro/internal/sparse"
)

// ExampleSpace_Supervector shows the paper's Eq. 2–3: a decoded phone
// string becomes a per-order-normalized probability supervector.
func ExampleSpace_Supervector() {
	space := ngram.NewSpace(3, 2) // 3 phones, unigram+bigram
	l := lattice.FromString([]int{0, 1, 0})
	v := space.Supervector(l)
	fmt.Printf("dim=%d nnz=%d\n", space.Dim(), v.NNZ())
	fmt.Printf("p(0)=%.3f p(1)=%.3f\n", v.At(space.Index([]int{0})), v.At(space.Index([]int{1})))
	fmt.Printf("p(01)=%.3f p(10)=%.3f\n", v.At(space.Index([]int{0, 1})), v.At(space.Index([]int{1, 0})))
	// Output:
	// dim=12 nnz=4
	// p(0)=0.667 p(1)=0.333
	// p(01)=0.500 p(10)=0.500
}

// ExampleTFLLR shows the Eq. 5 scaling: rare background grams are
// upweighted relative to frequent ones.
func ExampleTFLLR() {
	space := ngram.NewSpace(2, 1)
	bg := space.Supervector(lattice.FromString([]int{0, 0, 0, 1})) // p(0)=0.75, p(1)=0.25
	tf := ngram.EstimateTFLLR([]*sparse.Vector{bg}, space.Dim(), 1e-5)
	v := space.Supervector(lattice.FromString([]int{0, 1}))
	tf.Apply(v)
	fmt.Printf("scaled(0)=%.3f scaled(1)=%.3f\n", v.At(0), v.At(1))
	// Output:
	// scaled(0)=0.577 scaled(1)=1.000
}

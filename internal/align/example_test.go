package align_test

import (
	"fmt"

	"repro/internal/align"
)

// ExampleAlign computes the phone error rate of a decoder hypothesis
// against a reference transcription.
func ExampleAlign() {
	ref := []int{1, 2, 3, 4, 5}
	hyp := []int{1, 9, 3, 5} // one substitution (2→9), one deletion (4)
	c := align.Align(ref, hyp)
	fmt.Printf("hits=%d subs=%d ins=%d dels=%d\n", c.Hits, c.Subs, c.Ins, c.Dels)
	fmt.Printf("PER=%.0f%%\n", c.ErrorRate()*100)
	// Output:
	// hits=3 subs=1 ins=0 dels=1
	// PER=40%
}

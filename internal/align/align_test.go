package align

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIdenticalSequences(t *testing.T) {
	c := Align([]int{1, 2, 3}, []int{1, 2, 3})
	if c.Hits != 3 || c.Subs != 0 || c.Ins != 0 || c.Dels != 0 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Accuracy() != 1 || c.ErrorRate() != 0 {
		t.Fatalf("acc=%v per=%v", c.Accuracy(), c.ErrorRate())
	}
}

func TestSubstitution(t *testing.T) {
	c := Align([]int{1, 2, 3}, []int{1, 9, 3})
	if c.Hits != 2 || c.Subs != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestInsertionAndDeletion(t *testing.T) {
	cIns := Align([]int{1, 2}, []int{1, 7, 2})
	if cIns.Ins != 1 || cIns.Hits != 2 {
		t.Fatalf("insertion counts = %+v", cIns)
	}
	cDel := Align([]int{1, 7, 2}, []int{1, 2})
	if cDel.Dels != 1 || cDel.Hits != 2 {
		t.Fatalf("deletion counts = %+v", cDel)
	}
}

func TestEmptySequences(t *testing.T) {
	c := Align(nil, []int{1, 2})
	if c.Ins != 2 || c.RefLen() != 0 {
		t.Fatalf("counts = %+v", c)
	}
	c2 := Align([]int{1, 2}, nil)
	if c2.Dels != 2 {
		t.Fatalf("counts = %+v", c2)
	}
	if Align(nil, nil).ErrorRate() != 0 {
		t.Fatal("empty-vs-empty should be error-free")
	}
}

func TestAlignmentConsistency(t *testing.T) {
	// hits+subs+ins = len(hyp); hits+subs+dels = len(ref); total edits
	// equal the Levenshtein distance (not directly checked, but bounded).
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		ref := make([]int, rr.Intn(20))
		hyp := make([]int, rr.Intn(20))
		for i := range ref {
			ref[i] = rr.Intn(5)
		}
		for i := range hyp {
			hyp[i] = rr.Intn(5)
		}
		c := Align(ref, hyp)
		if c.Hits+c.Subs+c.Dels != len(ref) {
			return false
		}
		if c.Hits+c.Subs+c.Ins != len(hyp) {
			return false
		}
		return c.Hits >= 0 && c.Subs >= 0 && c.Ins >= 0 && c.Dels >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrefersHitsOverSubPairs(t *testing.T) {
	// ref=ABC hyp=AXBC: optimal keeps A,B,C as hits with one insertion.
	c := Align([]int{1, 2, 3}, []int{1, 9, 2, 3})
	if c.Hits != 3 || c.Ins != 1 || c.Subs != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

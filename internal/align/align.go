// Package align implements Levenshtein sequence alignment for phone error
// rate computation: given a reference and a hypothesis phone string, it
// returns the minimal-edit alignment counts (hits, substitutions,
// insertions, deletions), from which phone accuracy and PER are derived.
// Used by decoder diagnostics and tests.
package align

// Counts summarizes an alignment.
type Counts struct {
	Hits, Subs, Ins, Dels int
}

// RefLen returns the reference length implied by the alignment.
func (c Counts) RefLen() int { return c.Hits + c.Subs + c.Dels }

// Accuracy returns (hits − insertions)/refLen, the standard phone accuracy
// (can be negative for pathological hypotheses); PER = 1 − Accuracy.
func (c Counts) Accuracy() float64 {
	n := c.RefLen()
	if n == 0 {
		return 0
	}
	return float64(c.Hits-c.Ins) / float64(n)
}

// ErrorRate returns (subs + ins + dels)/refLen.
func (c Counts) ErrorRate() float64 {
	n := c.RefLen()
	if n == 0 {
		return 0
	}
	return float64(c.Subs+c.Ins+c.Dels) / float64(n)
}

// Alignment edit operations recorded during the DP pass.
const (
	opHit int8 = iota
	opSub
	opDel // reference phone unmatched
	opIns // hypothesis phone spurious
)

// Align computes the minimal-edit alignment between ref and hyp with unit
// substitution, insertion and deletion costs.
func Align(ref, hyp []int) Counts {
	n, m := len(ref), len(hyp)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	ops := make([][]int8, n+1)
	for i := range ops {
		ops[i] = make([]int8, m+1)
	}
	for j := 0; j <= m; j++ {
		prev[j] = j
		ops[0][j] = opIns
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		ops[i][0] = opDel
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			diagOp := opHit
			if ref[i-1] != hyp[j-1] {
				diag++
				diagOp = opSub
			}
			best, op := diag, diagOp
			if up := prev[j] + 1; up < best {
				best, op = up, opDel
			}
			if left := cur[j-1] + 1; left < best {
				best, op = left, opIns
			}
			cur[j] = best
			ops[i][j] = op
		}
		prev, cur = cur, prev
	}
	var c Counts
	i, j := n, m
	for i > 0 || j > 0 {
		switch ops[i][j] {
		case opHit:
			c.Hits++
			i--
			j--
		case opSub:
			c.Subs++
			i--
			j--
		case opDel:
			c.Dels++
			i--
		default:
			c.Ins++
			j--
		}
	}
	return c
}

package hmm

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPropertyDecodePartitionsFrames(t *testing.T) {
	r := rng.New(10)
	m := NewModel(3, toyEmissions(), 5)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(4) + 1
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rr.Intn(3)
		}
		frames := toySignal(rr, seq, rr.Intn(6)+4)
		segs := m.Decode(frames)
		if len(segs) == 0 {
			return false
		}
		if segs[0].Start != 0 || segs[len(segs)-1].End != len(frames) {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				return false
			}
			if segs[i].Phone == segs[i-1].Phone {
				return false // adjacent segments must differ
			}
		}
		for _, s := range segs {
			if s.Phone < 0 || s.Phone >= 3 || s.End <= s.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyForcedAlignPreservesTranscription(t *testing.T) {
	r := rng.New(11)
	m := NewModel(3, toyEmissions(), 5)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(3) + 1
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rr.Intn(3)
		}
		frames := toySignal(rr, seq, 8)
		segs, err := m.ForcedAlign(frames, seq)
		if err != nil {
			return false
		}
		if len(segs) != len(seq) {
			return false
		}
		for i, s := range segs {
			if s.Phone != seq[i] {
				return false
			}
		}
		// Contiguous cover.
		if segs[0].Start != 0 || segs[len(segs)-1].End != len(frames) {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertySegmentAlternativesAreDistributions(t *testing.T) {
	r := rng.New(12)
	m := NewModel(3, toyEmissions(), 5)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		seq := []int{rr.Intn(3), rr.Intn(3)}
		frames := toySignal(rr, seq, 6)
		segs := m.Decode(frames)
		alts := m.SegmentAlternatives(frames, segs, 3, 0.5)
		for _, slot := range alts {
			var sum float64
			prev := 2.0
			for _, a := range slot {
				if a.Posterior < 0 || a.Posterior > 1 || a.Posterior > prev+1e-12 {
					return false
				}
				prev = a.Posterior
				sum += a.Posterior
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

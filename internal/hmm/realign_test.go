package hmm

import (
	"testing"

	"repro/internal/rng"
)

func TestUniformSegments(t *testing.T) {
	segs := UniformSegments(30, []int{5, 6, 7})
	if len(segs) != 3 {
		t.Fatalf("%d segments", len(segs))
	}
	if segs[0].Start != 0 || segs[2].End != 30 {
		t.Fatal("segments do not span the frames")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatal("segments not contiguous")
		}
	}
	if UniformSegments(2, []int{1, 2, 3}) != nil {
		t.Fatal("accepted more phones than frames")
	}
	if UniformSegments(5, nil) != nil {
		t.Fatal("accepted empty transcription")
	}
}

// realignData builds utterances from the toy 3-phone model with *wrong*
// initial segmentations: the true boundaries are at 1/4 and 1/2 of each
// utterance but the flat start assumes thirds.
func realignData(r *rng.RNG, n int) (frames [][][]float64, phones [][]int, segs [][]Segment) {
	for u := 0; u < n; u++ {
		seq := []int{r.Intn(3), r.Intn(3), r.Intn(3)}
		for seq[1] == seq[0] {
			seq[1] = r.Intn(3)
		}
		for seq[2] == seq[1] {
			seq[2] = r.Intn(3)
		}
		// Uneven true durations: 6, 6, 12 frames.
		var fr [][]float64
		durs := []int{6, 6, 12}
		for i, p := range seq {
			for k := 0; k < durs[i]; k++ {
				fr = append(fr, []float64{float64(10*p) + 0.5*r.Norm()})
			}
		}
		frames = append(frames, fr)
		phones = append(phones, seq)
		segs = append(segs, UniformSegments(len(fr), seq))
	}
	return frames, phones, segs
}

func TestRealignImprovesBoundaries(t *testing.T) {
	r := rng.New(1)
	frames, phones, flat := realignData(r, 12)
	emit, segs := Realign(r, 3, frames, phones, flat, 2, 4, 3)
	if emit.NumStates() != 9 {
		t.Fatalf("NumStates = %d", emit.NumStates())
	}
	// After realignment, boundaries should be near the true 6/12 splits,
	// not the uniform 8/16 flat start.
	closer := 0
	for i, s := range segs {
		if len(s) != 3 {
			continue
		}
		// True first boundary at 6; flat start put it at 8.
		trueErr := abs(s[0].End - 6)
		flatErr := abs(flat[i][0].End - 6)
		if trueErr <= flatErr {
			closer++
		}
	}
	if closer < 8 {
		t.Fatalf("realignment moved only %d/12 first boundaries toward truth", closer)
	}
	// The refined model must decode the toy phones correctly.
	m := NewModel(3, emit, 5)
	testSeq := []int{0, 2, 1}
	testFrames := toySignal(rng.New(2), testSeq, 8)
	var got []int
	for _, s := range m.Decode(testFrames) {
		got = append(got, s.Phone)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("refined model decoded %v", got)
	}
}

func TestRealignTerminatesOnStableAlignment(t *testing.T) {
	// With perfect initial segments, realignment converges immediately
	// and must not corrupt them.
	r := rng.New(3)
	var frames [][][]float64
	var phones [][]int
	var segs [][]Segment
	for u := 0; u < 6; u++ {
		seq := []int{u % 3, (u + 1) % 3}
		var fr [][]float64
		var sg []Segment
		for i, p := range seq {
			start := len(fr)
			for k := 0; k < 10; k++ {
				fr = append(fr, []float64{float64(10*p) + 0.3*r.Norm()})
			}
			sg = append(sg, Segment{Phone: p, Start: start, End: len(fr)})
			_ = i
		}
		frames = append(frames, fr)
		phones = append(phones, seq)
		segs = append(segs, sg)
	}
	_, refined := Realign(r, 3, frames, phones, segs, 2, 3, 4)
	for i := range refined {
		if len(refined[i]) != len(segs[i]) {
			t.Fatal("realignment changed segment counts on clean data")
		}
		for j := range refined[i] {
			if refined[i][j].Phone != segs[i][j].Phone {
				t.Fatal("realignment changed phone identities")
			}
			if abs(refined[i][j].End-segs[i][j].End) > 2 {
				t.Fatalf("boundary drifted: %v vs %v", refined[i][j], segs[i][j])
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Package hmm implements the hidden-Markov-model machinery of the acoustic
// front-ends: 3-state left-to-right phone HMMs with pluggable emission
// scorers (diagonal GMMs for the GMM-HMM front-ends, MLP posterior
// estimators for the hybrid ANN/DNN-HMM front-ends), a phone-loop Viterbi
// decoder, forced alignment for acoustic-model training, and posterior-
// weighted confusion generation that downstream code assembles into phone
// lattices.
package hmm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gmm"
	"repro/internal/rng"
)

// StatesPerPhone is the paper's standard left-to-right topology.
const StatesPerPhone = 3

// EmissionScorer scores a feature frame against a global HMM state. State
// indices are phone*StatesPerPhone + stateWithinPhone.
type EmissionScorer interface {
	LogEmit(state int, frame []float64) float64
	NumStates() int
}

// Model is a phone-loop HMM over numPhones phones.
type Model struct {
	NumPhones int
	Emit      EmissionScorer
	// LogSelf is the self-loop log probability per state; the forward
	// transition gets log(1−exp(LogSelf)).
	LogSelf float64
	// LogPhoneTrans[a][b] is the log probability of phone b following
	// phone a at phone boundaries. If nil, uniform.
	LogPhoneTrans [][]float64
}

// NewModel builds a phone-loop model with the given emissions and an
// expected state duration of meanFramesPerState frames.
func NewModel(numPhones int, emit EmissionScorer, meanFramesPerState float64) *Model {
	if emit.NumStates() != numPhones*StatesPerPhone {
		panic(fmt.Sprintf("hmm: emission scorer has %d states for %d phones", emit.NumStates(), numPhones))
	}
	if meanFramesPerState < 1 {
		meanFramesPerState = 1
	}
	// Geometric duration: mean = 1/(1−p) → p = 1 − 1/mean.
	p := 1 - 1/meanFramesPerState
	if p <= 0 {
		p = 0.01
	}
	return &Model{
		NumPhones: numPhones,
		Emit:      emit,
		LogSelf:   math.Log(p),
	}
}

// Segment is a decoded phone span over feature frames [Start, End).
type Segment struct {
	Phone      int
	Start, End int
}

// Decode runs phone-loop Viterbi over the frames and returns the best
// phone segmentation. An empty input returns nil.
func (m *Model) Decode(frames [][]float64) []Segment {
	t := len(frames)
	if t == 0 {
		return nil
	}
	s := m.NumPhones * StatesPerPhone
	logFwd := math.Log(1 - math.Exp(m.LogSelf))
	negInf := math.Inf(-1)

	// delta[t][s], backpointer bp[t][s]: previous state, with −1 meaning
	// "entered from a phone boundary"; bpPhone holds the previous phone
	// in that case.
	delta := make([][]float64, t)
	bp := make([][]int32, t)
	bpPhone := make([][]int32, t)
	for i := range delta {
		delta[i] = make([]float64, s)
		bp[i] = make([]int32, s)
		bpPhone[i] = make([]int32, s)
	}

	uniform := -math.Log(float64(m.NumPhones))
	// Init: any phone may start, in its first state.
	for st := 0; st < s; st++ {
		if st%StatesPerPhone == 0 {
			delta[0][st] = uniform + m.Emit.LogEmit(st, frames[0])
		} else {
			delta[0][st] = negInf
		}
		bp[0][st] = -1
		bpPhone[0][st] = -1
	}

	for ti := 1; ti < t; ti++ {
		prev := delta[ti-1]
		cur := delta[ti]
		// Best phone exit at ti−1 for boundary transitions.
		bestExit, bestExitPhone := negInf, -1
		var exitScores []float64
		if m.LogPhoneTrans != nil {
			exitScores = make([]float64, m.NumPhones)
			for p := range exitScores {
				exitScores[p] = negInf
			}
		}
		for p := 0; p < m.NumPhones; p++ {
			exitState := p*StatesPerPhone + StatesPerPhone - 1
			v := prev[exitState] + logFwd
			if m.LogPhoneTrans != nil {
				exitScores[p] = v
			}
			if v > bestExit {
				bestExit, bestExitPhone = v, p
			}
		}
		for st := 0; st < s; st++ {
			within := st % StatesPerPhone
			phone := st / StatesPerPhone
			best := prev[st] + m.LogSelf
			from := int32(st)
			fromPhone := int32(-1)
			if within > 0 {
				if v := prev[st-1] + logFwd; v > best {
					best, from = v, int32(st-1)
				}
			} else {
				// Phone entry: from the best exiting phone.
				if m.LogPhoneTrans == nil {
					if v := bestExit + uniform; v > best {
						best, from, fromPhone = v, -1, int32(bestExitPhone)
					}
				} else {
					for pp := 0; pp < m.NumPhones; pp++ {
						if v := exitScores[pp] + m.LogPhoneTrans[pp][phone]; v > best {
							best, from, fromPhone = v, -1, int32(pp)
						}
					}
				}
			}
			cur[st] = best + m.Emit.LogEmit(st, frames[ti])
			bp[ti][st] = from
			bpPhone[ti][st] = fromPhone
		}
	}

	// Backtrace from the best final exit state.
	bestState, bestScore := 0, negInf
	for p := 0; p < m.NumPhones; p++ {
		st := p*StatesPerPhone + StatesPerPhone - 1
		if delta[t-1][st] > bestScore {
			bestState, bestScore = st, delta[t-1][st]
		}
	}
	if math.IsInf(bestScore, -1) {
		// No complete path; fall back to global best state.
		for st := 0; st < s; st++ {
			if delta[t-1][st] > bestScore {
				bestState, bestScore = st, delta[t-1][st]
			}
		}
	}
	// Recover phone boundaries by walking backpointers.
	phoneAt := make([]int, t)
	st := bestState
	for ti := t - 1; ti >= 0; ti-- {
		phoneAt[ti] = st / StatesPerPhone
		if ti == 0 {
			break
		}
		if bp[ti][st] >= 0 {
			st = int(bp[ti][st])
		} else {
			// Boundary: previous frame ended phone bpPhone in its exit
			// state.
			st = int(bpPhone[ti][st])*StatesPerPhone + StatesPerPhone - 1
		}
	}
	var segs []Segment
	start := 0
	for ti := 1; ti <= t; ti++ {
		if ti == t || phoneAt[ti] != phoneAt[start] {
			segs = append(segs, Segment{Phone: phoneAt[start], Start: start, End: ti})
			start = ti
		}
	}
	return segs
}

// ForcedAlign aligns frames against a known phone sequence with a
// left-to-right Viterbi pass, returning one segment per phone. Phones that
// receive no frames are dropped. It returns an error when there are fewer
// frames than required to give each phone one frame per state... relaxed:
// fewer frames than phones.
func (m *Model) ForcedAlign(frames [][]float64, phoneSeq []int) ([]Segment, error) {
	t, n := len(frames), len(phoneSeq)
	if n == 0 {
		return nil, fmt.Errorf("hmm: empty phone sequence")
	}
	if t < n {
		return nil, fmt.Errorf("hmm: %d frames cannot align %d phones", t, n)
	}
	logFwd := math.Log(1 - math.Exp(m.LogSelf))
	negInf := math.Inf(-1)
	// Linear state graph: n phones × StatesPerPhone states.
	s := n * StatesPerPhone
	emitState := func(linear int) int {
		phone := phoneSeq[linear/StatesPerPhone]
		return phone*StatesPerPhone + linear%StatesPerPhone
	}
	delta := make([][]float64, t)
	for i := range delta {
		delta[i] = make([]float64, s)
		for j := range delta[i] {
			delta[i][j] = negInf
		}
	}
	bp := make([][]int32, t)
	for i := range bp {
		bp[i] = make([]int32, s)
	}
	delta[0][0] = m.Emit.LogEmit(emitState(0), frames[0])
	for ti := 1; ti < t; ti++ {
		for st := 0; st < s; st++ {
			best, from := delta[ti-1][st]+m.LogSelf, int32(st)
			if st > 0 {
				if v := delta[ti-1][st-1] + logFwd; v > best {
					best, from = v, int32(st-1)
				}
			}
			if math.IsInf(best, -1) {
				continue
			}
			delta[ti][st] = best + m.Emit.LogEmit(emitState(st), frames[ti])
			bp[ti][st] = from
		}
	}
	if math.IsInf(delta[t-1][s-1], -1) {
		return nil, fmt.Errorf("hmm: no complete alignment path")
	}
	// Backtrace.
	stateAt := make([]int, t)
	st := int32(s - 1)
	for ti := t - 1; ti >= 0; ti-- {
		stateAt[ti] = int(st)
		if ti > 0 {
			st = bp[ti][st]
		}
	}
	var segs []Segment
	start := 0
	for ti := 1; ti <= t; ti++ {
		if ti == t || stateAt[ti]/StatesPerPhone != stateAt[start]/StatesPerPhone {
			segs = append(segs, Segment{
				Phone: phoneSeq[stateAt[start]/StatesPerPhone],
				Start: start,
				End:   ti,
			})
			start = ti
		}
	}
	return segs, nil
}

// Alternative is a candidate phone for a decoded segment with its
// posterior probability.
type Alternative struct {
	Phone     int
	Posterior float64
}

// SegmentAlternatives rescoring: for each decoded segment, every phone's
// emission model scores the segment's frames (summed over the best
// within-phone state per frame, a standard fast approximation), and the
// top-k phones are returned with softmax posteriors. This is the
// confusion-network form of lattice generation.
func (m *Model) SegmentAlternatives(frames [][]float64, segs []Segment, k int, acousticScale float64) [][]Alternative {
	out := make([][]Alternative, len(segs))
	scores := make([]float64, m.NumPhones)
	for i, seg := range segs {
		for p := 0; p < m.NumPhones; p++ {
			var total float64
			for ti := seg.Start; ti < seg.End; ti++ {
				best := math.Inf(-1)
				for w := 0; w < StatesPerPhone; w++ {
					if v := m.Emit.LogEmit(p*StatesPerPhone+w, frames[ti]); v > best {
						best = v
					}
				}
				total += best
			}
			scores[p] = total * acousticScale / float64(seg.End-seg.Start)
		}
		out[i] = softmaxTopK(scores, k)
	}
	return out
}

// softmaxTopK returns the top-k indices of scores with their softmax
// probabilities renormalized over the selected set.
func softmaxTopK(scores []float64, k int) []Alternative {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	maxv := scores[idx[0]]
	alts := make([]Alternative, 0, k)
	var z float64
	for _, i := range idx[:k] {
		z += math.Exp(scores[i] - maxv)
	}
	for _, i := range idx[:k] {
		alts = append(alts, Alternative{Phone: i, Posterior: math.Exp(scores[i]-maxv) / z})
	}
	return alts
}

// GMMEmissions is the GMM-HMM emission scorer: one diagonal GMM per state.
type GMMEmissions struct {
	States []*gmm.GMM
}

// LogEmit implements EmissionScorer.
func (g *GMMEmissions) LogEmit(state int, frame []float64) float64 {
	return g.States[state].LogProb(frame)
}

// NumStates implements EmissionScorer.
func (g *GMMEmissions) NumStates() int { return len(g.States) }

// TrainGMMEmissions trains per-state GMMs from labeled utterances using a
// flat-start: each labeled phone segment contributes its frames split into
// StatesPerPhone equal chunks (the standard uniform-segmentation
// initialization before realignment).
//
// utterFrames[i] are the frames of utterance i; utterSegs[i] its phone
// segments. numComp is the Gaussians per state (32 in the paper; smaller
// values keep tests fast).
func TrainGMMEmissions(r *rng.RNG, numPhones int, utterFrames [][][]float64, utterSegs [][]Segment, numComp, emIters int) *GMMEmissions {
	if len(utterFrames) != len(utterSegs) {
		panic("hmm: frames/segments length mismatch")
	}
	numStates := numPhones * StatesPerPhone
	buckets := make([][][]float64, numStates)
	for ui := range utterFrames {
		frames := utterFrames[ui]
		for _, seg := range utterSegs[ui] {
			segLen := seg.End - seg.Start
			if segLen <= 0 {
				continue
			}
			for off := 0; off < segLen; off++ {
				w := off * StatesPerPhone / segLen
				state := seg.Phone*StatesPerPhone + w
				buckets[state] = append(buckets[state], frames[seg.Start+off])
			}
		}
	}
	var dim int
	for _, b := range buckets {
		if len(b) > 0 {
			dim = len(b[0])
			break
		}
	}
	if dim == 0 {
		panic("hmm: no training frames")
	}
	e := &GMMEmissions{States: make([]*gmm.GMM, numStates)}
	for st := 0; st < numStates; st++ {
		data := buckets[st]
		nc := numComp
		if len(data) < 2*nc {
			nc = len(data)/2 + 1
		}
		if len(data) == 0 {
			// Unseen state: broad fallback model so decoding stays finite.
			e.States[st] = gmm.New(dim, 1)
			continue
		}
		e.States[st] = gmm.Train(r.Split(uint64(st)), data, dim, nc, 5, emIters)
	}
	return e
}

// PosteriorEmissions adapts a frame-posterior classifier (the MLP of the
// hybrid ANN/DNN-HMM front-ends) into HMM emission scores via the standard
// hybrid scaled-likelihood trick: log p(x|s) ≈ log P(s|x) − log P(s).
type PosteriorEmissions struct {
	// Classify returns per-phone log posteriors for a frame.
	Classify func(frame []float64) []float64
	// LogPriors are per-phone log priors subtracted from posteriors.
	LogPriors []float64
	// cached per-frame results keyed by frame identity are intentionally
	// omitted; the decoder calls states of the same phone with the same
	// frame, so we memoize the last frame.
	lastFrame []float64
	lastLogP  []float64
}

// LogEmit implements EmissionScorer. All states of a phone share the
// phone-level scaled likelihood.
func (p *PosteriorEmissions) LogEmit(state int, frame []float64) float64 {
	if !sameSlice(p.lastFrame, frame) {
		p.lastLogP = p.Classify(frame)
		p.lastFrame = frame
	}
	phone := state / StatesPerPhone
	return p.lastLogP[phone] - p.LogPriors[phone]
}

// NumStates implements EmissionScorer.
func (p *PosteriorEmissions) NumStates() int { return len(p.LogPriors) * StatesPerPhone }

func sameSlice(a, b []float64) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

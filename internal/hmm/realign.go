package hmm

import (
	"repro/internal/rng"
)

// Realign performs Viterbi-realignment training, the standard refinement
// loop after a flat start (the paper's GMM-HMM recipe: maximum-likelihood
// training, then the ML model generates state-aligned transcriptions for
// the next round): each iteration force-aligns every utterance's phone
// transcription with the current model, then retrains the per-state GMM
// emissions from the new segment boundaries.
//
// utterFrames[i] are utterance i's feature frames, utterPhones[i] its
// phone transcription (not segments — alignment finds the boundaries).
// Utterances whose alignment fails (shorter than their transcription) keep
// their previous segmentation. Returns the refined emissions; the caller
// rebuilds its Model around them.
func Realign(r *rng.RNG, numPhones int, utterFrames [][][]float64, utterPhones [][]int,
	initialSegs [][]Segment, numComp, emIters, realignIters int) (*GMMEmissions, [][]Segment) {

	if len(utterFrames) != len(utterPhones) || len(utterFrames) != len(initialSegs) {
		panic("hmm: Realign input length mismatch")
	}
	segs := make([][]Segment, len(initialSegs))
	copy(segs, initialSegs)

	emit := TrainGMMEmissions(r.Split(0), numPhones, utterFrames, segs, numComp, emIters)
	for it := 1; it <= realignIters; it++ {
		model := NewModel(numPhones, emit, 7)
		changed := false
		for i := range utterFrames {
			newSegs, err := model.ForcedAlign(utterFrames[i], utterPhones[i])
			if err != nil {
				continue
			}
			if !segsEqual(newSegs, segs[i]) {
				changed = true
			}
			segs[i] = newSegs
		}
		emit = TrainGMMEmissions(r.Split(uint64(it)), numPhones, utterFrames, segs, numComp, emIters)
		if !changed {
			break
		}
	}
	return emit, segs
}

func segsEqual(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UniformSegments builds the flat-start segmentation: each utterance's
// frames are split evenly across its transcription's phones.
func UniformSegments(numFrames int, phoneSeq []int) []Segment {
	n := len(phoneSeq)
	if n == 0 || numFrames < n {
		return nil
	}
	segs := make([]Segment, n)
	for i, p := range phoneSeq {
		segs[i] = Segment{
			Phone: p,
			Start: i * numFrames / n,
			End:   (i + 1) * numFrames / n,
		}
	}
	return segs
}

package hmm

import (
	"math"
	"testing"

	"repro/internal/gmm"
	"repro/internal/rng"
)

// toyEmissions builds 3 phones whose states emit 1-D Gaussians centered at
// distinct values: phone p emits around 10·p (all three states share the
// center, slightly offset per state).
func toyEmissions() *GMMEmissions {
	e := &GMMEmissions{}
	for p := 0; p < 3; p++ {
		for s := 0; s < StatesPerPhone; s++ {
			g := gmm.New(1, 1)
			g.Means[0][0] = float64(10*p) + 0.1*float64(s)
			g.Vars[0][0] = 1
			g.TrainEM(nil, 0) // no-op; refresh happens in New
			e.States = append(e.States, g)
		}
	}
	return e
}

// toySignal emits frames for the given phone sequence, framesPer per phone.
func toySignal(r *rng.RNG, seq []int, framesPer int) [][]float64 {
	var frames [][]float64
	for _, p := range seq {
		for i := 0; i < framesPer; i++ {
			frames = append(frames, []float64{float64(10*p) + 0.5*r.Norm()})
		}
	}
	return frames
}

func TestDecodeRecoversSequence(t *testing.T) {
	r := rng.New(1)
	m := NewModel(3, toyEmissions(), 5)
	seq := []int{0, 2, 1, 0, 1}
	frames := toySignal(r, seq, 8)
	segs := m.Decode(frames)
	var got []int
	for _, s := range segs {
		got = append(got, s.Phone)
	}
	if len(got) != len(seq) {
		t.Fatalf("decoded %v, want %v", got, seq)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("decoded %v, want %v", got, seq)
		}
	}
}

func TestDecodeSegmentsPartitionFrames(t *testing.T) {
	r := rng.New(2)
	m := NewModel(3, toyEmissions(), 5)
	frames := toySignal(r, []int{1, 0, 2}, 10)
	segs := m.Decode(frames)
	if segs[0].Start != 0 {
		t.Fatalf("first segment starts at %d", segs[0].Start)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("segments not contiguous at %d", i)
		}
	}
	if segs[len(segs)-1].End != len(frames) {
		t.Fatalf("last segment ends at %d, want %d", segs[len(segs)-1].End, len(frames))
	}
}

func TestDecodeBoundariesApproximatelyCorrect(t *testing.T) {
	r := rng.New(3)
	m := NewModel(3, toyEmissions(), 5)
	frames := toySignal(r, []int{0, 2}, 20)
	segs := m.Decode(frames)
	if len(segs) != 2 {
		t.Fatalf("got %d segments", len(segs))
	}
	if b := segs[0].End; b < 17 || b > 23 {
		t.Fatalf("boundary at %d, want ≈20", b)
	}
}

func TestDecodeEmpty(t *testing.T) {
	m := NewModel(3, toyEmissions(), 5)
	if segs := m.Decode(nil); segs != nil {
		t.Fatalf("Decode(nil) = %v", segs)
	}
}

func TestDecodeWithPhoneLM(t *testing.T) {
	// With a language model strongly favoring 0→1→0→1…, an ambiguous
	// signal should decode to the LM-favored sequence.
	r := rng.New(4)
	m := NewModel(3, toyEmissions(), 5)
	lm := make([][]float64, 3)
	for a := range lm {
		lm[a] = []float64{math.Log(0.05), math.Log(0.05), math.Log(0.05)}
	}
	lm[0][1] = math.Log(0.9)
	lm[1][0] = math.Log(0.9)
	lm[2][0] = math.Log(0.9)
	m.LogPhoneTrans = lm
	frames := toySignal(r, []int{0, 1, 0, 1}, 8)
	segs := m.Decode(frames)
	var got []int
	for _, s := range segs {
		got = append(got, s.Phone)
	}
	want := []int{0, 1, 0, 1}
	if len(got) != 4 {
		t.Fatalf("decoded %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded %v, want %v", got, want)
		}
	}
}

func TestForcedAlign(t *testing.T) {
	r := rng.New(5)
	m := NewModel(3, toyEmissions(), 5)
	seq := []int{2, 0, 1}
	frames := toySignal(r, seq, 12)
	segs, err := m.ForcedAlign(frames, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	for i, s := range segs {
		if s.Phone != seq[i] {
			t.Fatalf("segment %d phone %d, want %d", i, s.Phone, seq[i])
		}
	}
	// Boundaries near 12 and 24.
	if b := segs[0].End; b < 9 || b > 15 {
		t.Fatalf("first boundary at %d", b)
	}
	if b := segs[1].End; b < 21 || b > 27 {
		t.Fatalf("second boundary at %d", b)
	}
}

func TestForcedAlignErrors(t *testing.T) {
	m := NewModel(3, toyEmissions(), 5)
	if _, err := m.ForcedAlign([][]float64{{0}}, nil); err == nil {
		t.Error("accepted empty phone sequence")
	}
	if _, err := m.ForcedAlign([][]float64{{0}}, []int{0, 1, 2}); err == nil {
		t.Error("accepted more phones than frames")
	}
}

func TestSegmentAlternatives(t *testing.T) {
	r := rng.New(6)
	m := NewModel(3, toyEmissions(), 5)
	frames := toySignal(r, []int{1}, 10)
	segs := []Segment{{Phone: 1, Start: 0, End: 10}}
	alts := m.SegmentAlternatives(frames, segs, 3, 1.0)
	if len(alts) != 1 || len(alts[0]) != 3 {
		t.Fatalf("alternatives shape wrong: %v", alts)
	}
	if alts[0][0].Phone != 1 {
		t.Fatalf("top alternative is phone %d", alts[0][0].Phone)
	}
	var sum float64
	for _, a := range alts[0] {
		if a.Posterior < 0 || a.Posterior > 1 {
			t.Fatalf("posterior %v out of range", a.Posterior)
		}
		sum += a.Posterior
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", sum)
	}
	if alts[0][0].Posterior < alts[0][1].Posterior {
		t.Fatal("alternatives not sorted by posterior")
	}
}

func TestSegmentAlternativesAcousticScaleFlattens(t *testing.T) {
	r := rng.New(7)
	m := NewModel(3, toyEmissions(), 5)
	frames := toySignal(r, []int{1}, 10)
	segs := []Segment{{Phone: 1, Start: 0, End: 10}}
	sharp := m.SegmentAlternatives(frames, segs, 3, 1.0)
	flat := m.SegmentAlternatives(frames, segs, 3, 0.05)
	if flat[0][0].Posterior >= sharp[0][0].Posterior {
		t.Fatalf("scale 0.05 posterior %v not flatter than scale 1.0 %v",
			flat[0][0].Posterior, sharp[0][0].Posterior)
	}
}

func TestTrainGMMEmissionsEndToEnd(t *testing.T) {
	// Generate labeled data from the toy model, train emissions from
	// scratch, and verify the trained model decodes correctly.
	r := rng.New(8)
	var utterFrames [][][]float64
	var utterSegs [][]Segment
	for u := 0; u < 10; u++ {
		seq := []int{r.Intn(3), r.Intn(3), r.Intn(3)}
		frames := toySignal(r, seq, 9)
		var segs []Segment
		for i, p := range seq {
			segs = append(segs, Segment{Phone: p, Start: i * 9, End: (i + 1) * 9})
		}
		utterFrames = append(utterFrames, frames)
		utterSegs = append(utterSegs, segs)
	}
	emit := TrainGMMEmissions(r, 3, utterFrames, utterSegs, 2, 5)
	if emit.NumStates() != 9 {
		t.Fatalf("NumStates = %d", emit.NumStates())
	}
	m := NewModel(3, emit, 5)
	seq := []int{0, 2, 1}
	frames := toySignal(r, seq, 10)
	segs := m.Decode(frames)
	var got []int
	for _, s := range segs {
		got = append(got, s.Phone)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("trained model decoded %v, want %v", got, seq)
	}
}

func TestPosteriorEmissions(t *testing.T) {
	calls := 0
	pe := &PosteriorEmissions{
		Classify: func(frame []float64) []float64 {
			calls++
			// Log posteriors favoring phone = round(frame[0]/10).
			out := make([]float64, 3)
			for p := range out {
				d := frame[0] - float64(10*p)
				out[p] = -d * d
			}
			return out
		},
		LogPriors: []float64{math.Log(1.0 / 3), math.Log(1.0 / 3), math.Log(1.0 / 3)},
	}
	if pe.NumStates() != 9 {
		t.Fatalf("NumStates = %d", pe.NumStates())
	}
	frame := []float64{10}
	// All three states of phone 1 share the frame-level result; the
	// classifier must be invoked only once for the same frame slice.
	a := pe.LogEmit(3, frame)
	b := pe.LogEmit(4, frame)
	c := pe.LogEmit(5, frame)
	if a != b || b != c {
		t.Fatal("states of one phone scored differently")
	}
	if calls != 1 {
		t.Fatalf("classifier called %d times for one frame", calls)
	}
	if pe.LogEmit(0, frame) >= a {
		t.Fatal("wrong phone scored higher")
	}
}

func TestPosteriorEmissionsDecode(t *testing.T) {
	r := rng.New(9)
	pe := &PosteriorEmissions{
		Classify: func(frame []float64) []float64 {
			out := make([]float64, 3)
			var z float64
			for p := range out {
				d := frame[0] - float64(10*p)
				out[p] = math.Exp(-d * d / 2)
				z += out[p]
			}
			for p := range out {
				out[p] = math.Log(out[p]/z + 1e-30)
			}
			return out
		},
		LogPriors: []float64{math.Log(1.0 / 3), math.Log(1.0 / 3), math.Log(1.0 / 3)},
	}
	m := NewModel(3, pe, 5)
	seq := []int{1, 0, 2}
	frames := toySignal(r, seq, 10)
	segs := m.Decode(frames)
	var got []int
	for _, s := range segs {
		got = append(got, s.Phone)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("hybrid decode = %v, want %v", got, seq)
	}
}

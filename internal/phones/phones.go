// Package phones defines the universal phone inventory the synthetic
// languages articulate in, and the per-front-end phone sets that the six
// recognizers decode into.
//
// The paper's front-ends each have their own inventory — 43 phones for the
// BUT Czech recognizer, 59 for Hungarian, 50 for Russian, 47 for the
// English recognizers (including non-phonetic units: noise, short pause,
// silence), 64 for Mandarin. Languages, however, draw from a shared
// articulatory space: a Hungarian recognizer transcribes Farsi speech into
// *Hungarian* phones. We model this with a universal space of 64 phones
// carrying articulatory attributes (class, voicing, formant targets used by
// waveform synthesis) and a deterministic many-to-one mapping from the
// universal space onto each front-end's inventory that preserves broad
// class, mimicking how a foreign phone is heard as the recognizer's nearest
// native phone.
package phones

import (
	"fmt"

	"repro/internal/rng"
)

// Class is a broad articulatory class.
type Class int

// Broad articulatory classes. Mapping onto front-end inventories happens
// within a class: a vowel is always heard as some vowel.
const (
	Vowel Class = iota
	Stop
	Fricative
	Nasal
	Liquid
	Glide
	Affricate
	Silence // also covers short pause and noise units
	numClasses
)

func (c Class) String() string {
	switch c {
	case Vowel:
		return "vowel"
	case Stop:
		return "stop"
	case Fricative:
		return "fricative"
	case Nasal:
		return "nasal"
	case Liquid:
		return "liquid"
	case Glide:
		return "glide"
	case Affricate:
		return "affricate"
	case Silence:
		return "silence"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Phone is a universal phone with the articulatory attributes the waveform
// synthesizer and the front-end mapping need.
type Phone struct {
	ID     int
	Symbol string
	Class  Class
	Voiced bool
	// Formant targets in Hz (vowels and sonorants; zero for obstruents,
	// which are synthesized from shaped noise).
	F1, F2, F3 float64
	// Duration model in milliseconds.
	MeanDurMs, StdDurMs float64
}

// UniversalSize is the size of the universal phone space.
const UniversalSize = 64

// Universal returns the fixed 64-phone universal inventory. The inventory
// is deterministic: vowels populate a formant grid spanning the telephone
// band; consonants are spread across classes in proportions typical of
// cross-linguistic inventories (Maddieson's UPSID proportions,
// approximately).
func Universal() []Phone {
	var inv []Phone
	id := 0
	add := func(sym string, c Class, voiced bool, f1, f2, f3, durMean, durStd float64) {
		inv = append(inv, Phone{
			ID: id, Symbol: sym, Class: c, Voiced: voiced,
			F1: f1, F2: f2, F3: f3, MeanDurMs: durMean, StdDurMs: durStd,
		})
		id++
	}

	// 18 vowels on a 6×3 F1/F2 grid (F1: height, F2: backness).
	f1s := []float64{300, 400, 500, 600, 700, 800}
	f2s := []float64{900, 1500, 2100}
	v := 0
	for _, f1 := range f1s {
		for _, f2 := range f2s {
			add(fmt.Sprintf("v%02d", v), Vowel, true, f1, f2, 2600, 90, 25)
			v++
		}
	}

	// 12 stops: voiced/voiceless at 6 places (burst loci approximated by
	// F2 target).
	places := []float64{700, 1100, 1500, 1800, 2100, 2400}
	for i, loc := range places {
		add(fmt.Sprintf("p%02dv", i), Stop, true, 250, loc, 2500, 55, 15)
		add(fmt.Sprintf("p%02du", i), Stop, false, 0, loc, 0, 60, 15)
	}

	// 14 fricatives: 7 places, voiced/voiceless.
	fric := []float64{1000, 1400, 1800, 2200, 2600, 3000, 3400}
	for i, loc := range fric {
		add(fmt.Sprintf("f%02dv", i), Fricative, true, 300, loc, 2800, 80, 20)
		add(fmt.Sprintf("f%02du", i), Fricative, false, 0, loc, 0, 85, 20)
	}

	// 6 nasals.
	nas := []float64{900, 1200, 1500, 1800, 2100, 2400}
	for i, loc := range nas {
		add(fmt.Sprintf("n%02d", i), Nasal, true, 280, loc, 2300, 70, 18)
	}

	// 5 liquids.
	liq := []float64{1000, 1300, 1600, 1900, 2200}
	for i, loc := range liq {
		add(fmt.Sprintf("l%02d", i), Liquid, true, 380, loc, 2500, 65, 18)
	}

	// 4 glides.
	gli := []float64{800, 1300, 1800, 2300}
	for i, loc := range gli {
		add(fmt.Sprintf("g%02d", i), Glide, true, 350, loc, 2400, 60, 15)
	}

	// 3 affricates.
	aff := []float64{1600, 2000, 2400}
	for i, loc := range aff {
		add(fmt.Sprintf("a%02d", i), Affricate, false, 0, loc, 0, 90, 20)
	}

	// 2 silence-class units: silence, non-speech noise.
	add("sil", Silence, false, 0, 0, 0, 150, 60)
	add("nsn", Silence, false, 0, 1500, 0, 120, 50)

	if len(inv) != UniversalSize {
		panic(fmt.Sprintf("phones: universal inventory has %d phones, want %d", len(inv), UniversalSize))
	}
	return inv
}

// Set is a front-end phone inventory with its mapping from the universal
// space.
type Set struct {
	Name string
	// Size is the number of phones in this front-end's inventory.
	Size int
	// MapFromUniversal[u] gives the front-end phone index that universal
	// phone u is perceived as.
	MapFromUniversal []int
	// ClassOf[p] is the broad class of front-end phone p (inherited from
	// the universal phones mapped to it).
	ClassOf []Class
}

// NewSet derives a front-end inventory of the given size from the universal
// space using a deterministic seeded partition that preserves broad class:
// the universal phones of each class are split into groups proportional to
// the class's share of the inventory, and each group becomes one front-end
// phone. size must be between numClasses and UniversalSize.
func NewSet(name string, size int, seed uint64) *Set {
	if size < int(numClasses) || size > UniversalSize {
		panic(fmt.Sprintf("phones: front-end size %d out of range [%d,%d]", size, numClasses, UniversalSize))
	}
	inv := Universal()
	r := rng.New(seed)

	// Group universal phone IDs by class.
	byClass := make([][]int, numClasses)
	for _, p := range inv {
		byClass[p.Class] = append(byClass[p.Class], p.ID)
	}

	// Allocate front-end phones per class: at least 1, proportional to
	// class size, never exceeding class size (a class with k universal
	// phones can distinguish at most k).
	alloc := make([]int, numClasses)
	total := 0
	for c := range alloc {
		alloc[c] = 1
		total++
	}
	for total < size {
		// Give the next phone to the class with the highest remaining
		// universal-to-frontend ratio.
		best, bestRatio := -1, 0.0
		for c := range alloc {
			if alloc[c] >= len(byClass[c]) {
				continue
			}
			ratio := float64(len(byClass[c])) / float64(alloc[c])
			if ratio > bestRatio {
				best, bestRatio = c, ratio
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
		total++
	}

	s := &Set{
		Name:             name,
		Size:             total,
		MapFromUniversal: make([]int, UniversalSize),
		ClassOf:          make([]Class, 0, total),
	}
	next := 0
	for c := Class(0); c < numClasses; c++ {
		ids := append([]int(nil), byClass[c]...)
		// Seeded shuffle so each front-end partitions differently — this
		// is the source of front-end diversity.
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		k := alloc[c]
		for g := 0; g < k; g++ {
			// Contiguous chunk of the shuffled ids.
			lo := g * len(ids) / k
			hi := (g + 1) * len(ids) / k
			for _, u := range ids[lo:hi] {
				s.MapFromUniversal[u] = next
			}
			s.ClassOf = append(s.ClassOf, c)
			next++
		}
	}
	return s
}

// Map returns the front-end phone for universal phone u.
func (s *Set) Map(u int) int { return s.MapFromUniversal[u] }

// Validate checks internal invariants, returning the first violation.
func (s *Set) Validate() error {
	if len(s.MapFromUniversal) != UniversalSize {
		return fmt.Errorf("phones: map covers %d universal phones", len(s.MapFromUniversal))
	}
	seen := make([]bool, s.Size)
	for u, p := range s.MapFromUniversal {
		if p < 0 || p >= s.Size {
			return fmt.Errorf("phones: universal %d maps to out-of-range %d", u, p)
		}
		seen[p] = true
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("phones: front-end phone %d unused", p)
		}
	}
	if len(s.ClassOf) != s.Size {
		return fmt.Errorf("phones: ClassOf has %d entries for %d phones", len(s.ClassOf), s.Size)
	}
	inv := Universal()
	for u, p := range s.MapFromUniversal {
		if inv[u].Class != s.ClassOf[p] {
			return fmt.Errorf("phones: universal %d (class %v) mapped across class to %d (%v)",
				u, inv[u].Class, p, s.ClassOf[p])
		}
	}
	return nil
}

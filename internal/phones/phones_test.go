package phones

import (
	"testing"
)

func TestUniversalInventory(t *testing.T) {
	inv := Universal()
	if len(inv) != UniversalSize {
		t.Fatalf("inventory size = %d", len(inv))
	}
	symbols := make(map[string]bool)
	for i, p := range inv {
		if p.ID != i {
			t.Fatalf("phone %d has ID %d", i, p.ID)
		}
		if symbols[p.Symbol] {
			t.Fatalf("duplicate symbol %q", p.Symbol)
		}
		symbols[p.Symbol] = true
		if p.MeanDurMs <= 0 {
			t.Fatalf("phone %s has non-positive duration", p.Symbol)
		}
		if p.Class == Vowel && (p.F1 <= 0 || p.F2 <= 0) {
			t.Fatalf("vowel %s missing formants", p.Symbol)
		}
	}
}

func TestUniversalDeterministic(t *testing.T) {
	a, b := Universal(), Universal()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Universal() not deterministic at %d", i)
		}
	}
}

func TestUniversalHasAllClasses(t *testing.T) {
	counts := make(map[Class]int)
	for _, p := range Universal() {
		counts[p.Class]++
	}
	for c := Class(0); c < numClasses; c++ {
		if counts[c] == 0 {
			t.Errorf("no phones of class %v", c)
		}
	}
	if counts[Vowel] != 18 {
		t.Errorf("vowel count = %d, want 18", counts[Vowel])
	}
}

func TestNewSetSizesMatchPaper(t *testing.T) {
	// The paper's inventories: CZ 43, EN 47, RU 50, HU 59, MA 64.
	for _, tc := range []struct {
		name string
		size int
	}{
		{"CZ", 43}, {"EN", 47}, {"RU", 50}, {"HU", 59}, {"MA", 64},
	} {
		s := NewSet(tc.name, tc.size, 99)
		if s.Size != tc.size {
			t.Errorf("%s: got size %d, want %d", tc.name, s.Size, tc.size)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestNewSetDeterministicPerSeed(t *testing.T) {
	a := NewSet("X", 47, 5)
	b := NewSet("X", 47, 5)
	for u := range a.MapFromUniversal {
		if a.MapFromUniversal[u] != b.MapFromUniversal[u] {
			t.Fatal("same seed produced different mappings")
		}
	}
}

func TestNewSetSeedsDiffer(t *testing.T) {
	a := NewSet("X", 47, 1)
	b := NewSet("X", 47, 2)
	diff := 0
	for u := range a.MapFromUniversal {
		if a.MapFromUniversal[u] != b.MapFromUniversal[u] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical mappings (no front-end diversity)")
	}
}

func TestMapPreservesClass(t *testing.T) {
	inv := Universal()
	s := NewSet("HU", 59, 7)
	for _, p := range inv {
		fe := s.Map(p.ID)
		if s.ClassOf[fe] != p.Class {
			t.Fatalf("phone %s (class %v) mapped to front-end class %v", p.Symbol, p.Class, s.ClassOf[fe])
		}
	}
}

func TestFullSizeSetIsBijective(t *testing.T) {
	s := NewSet("MA", UniversalSize, 3)
	seen := make(map[int]bool)
	for _, p := range s.MapFromUniversal {
		if seen[p] {
			t.Fatal("size-64 set is not a bijection")
		}
		seen[p] = true
	}
}

func TestNewSetPanicsOutOfRange(t *testing.T) {
	for _, size := range []int{0, 3, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSet accepted size %d", size)
				}
			}()
			NewSet("bad", size, 1)
		}()
	}
}

func TestClassString(t *testing.T) {
	if Vowel.String() != "vowel" || Silence.String() != "silence" {
		t.Fatal("Class.String wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class String empty")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := NewSet("X", 43, 1)
	s.MapFromUniversal[0] = 999
	if s.Validate() == nil {
		t.Fatal("Validate accepted out-of-range mapping")
	}
}

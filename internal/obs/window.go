package obs

import (
	"sync/atomic"
	"time"
)

// Rolling-window decorators over the cumulative metrics: a Window is a
// ring of fixed-duration shards, each holding the same lock-free
// Histogram the registry uses for process-lifetime data, and a
// WindowCounter is the same ring over a plain atomic count. Together they
// let /metricsz report live RED metrics (rate over the last 1m/5m,
// windowed latency quantiles, windowed error and degradation counts)
// next to the cumulative values, without sacrificing the "recording is a
// few atomics" cost model: Observe/Add touch exactly one shard, selected
// by quantized wall time, and stale shards are recycled lazily by the
// first writer (or reader) that lands on them in a new epoch.
//
// Accuracy contract: a window of W seconds merges every shard whose
// epoch lies inside (now-W, now], i.e. the current partial shard plus
// the full shards behind it, so a "1m" view covers between W and
// W+shardDur seconds of traffic. Shard recycling races (two writers
// hitting a stale shard at an epoch boundary) can smear a handful of
// observations between adjacent shards; that is within the tolerance of
// a live view and never perturbs the cumulative metrics.

const (
	// windowShardDur is the ring's resolution; windows are multiples of it.
	windowShardDur = 10 * time.Second
	// windowShardCount covers the largest reported window (5m = 30 full
	// shards) plus the current partial shard, with headroom.
	windowShardCount = 32
)

// WindowStats is one merged window of a Window or WindowCounter, as
// reported under Report.Windows.
type WindowStats struct {
	Count      int64   `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	SumSec     float64 `json:"sum_sec,omitempty"`
	MeanSec    float64 `json:"mean_sec,omitempty"`
	P50Sec     float64 `json:"p50_sec,omitempty"`
	P95Sec     float64 `json:"p95_sec,omitempty"`
	P99Sec     float64 `json:"p99_sec,omitempty"`
}

// WindowsData is the pair of windows every windowed metric reports.
type WindowsData struct {
	M1 WindowStats `json:"1m"`
	M5 WindowStats `json:"5m"`
}

// windowShard is one ring slot: the quantized epoch it currently belongs
// to (0 = never used) and its data.
type windowShard struct {
	epoch atomic.Int64
	hist  Histogram
}

// Window is a rolling-window histogram: a ring of shard Histograms over
// quantized wall time.
type Window struct {
	shardDur time.Duration
	now      func() time.Time
	shards   []windowShard
}

func newWindow(shardDur time.Duration, shards int, now func() time.Time) *Window {
	if now == nil {
		now = time.Now
	}
	return &Window{shardDur: shardDur, now: now, shards: make([]windowShard, shards)}
}

// epochNow quantizes the clock to shard units.
func (w *Window) epochNow() int64 { return w.now().UnixNano() / int64(w.shardDur) }

// shardFor returns the ring slot for epoch e, recycling it if it still
// holds an older epoch's data.
func (w *Window) shardFor(e int64) *windowShard {
	sh := &w.shards[int(e%int64(len(w.shards)))]
	if old := sh.epoch.Load(); old != e && sh.epoch.CompareAndSwap(old, e) {
		sh.hist.reset()
	}
	return sh
}

// Observe records one value (seconds) into the current shard.
func (w *Window) Observe(v float64) { w.shardFor(w.epochNow()).hist.Observe(v) }

// Stats merges every shard inside the trailing window into one
// HistogramData-equivalent summary. Rate is count over the nominal
// window length.
func (w *Window) Stats(window time.Duration) WindowStats {
	if window < w.shardDur {
		window = w.shardDur
	}
	nowE := w.epochNow()
	k := int64(window / w.shardDur)
	var counts [numBuckets + 1]int64
	var count int64
	var sum float64
	for i := range w.shards {
		sh := &w.shards[i]
		e := sh.epoch.Load()
		if e == 0 || e <= nowE-k || e > nowE {
			continue
		}
		for b := 0; b <= numBuckets; b++ {
			counts[b] += sh.hist.counts[b].Load()
		}
		count += sh.hist.count.Load()
		sum += sh.hist.Sum()
	}
	st := WindowStats{Count: count, RatePerSec: float64(count) / window.Seconds(), SumSec: sum}
	if count > 0 {
		st.MeanSec = sum / float64(count)
		st.P50Sec = quantileFromCounts(&counts, count, 0.50)
		st.P95Sec = quantileFromCounts(&counts, count, 0.95)
		st.P99Sec = quantileFromCounts(&counts, count, 0.99)
	}
	return st
}

// reset recycles every shard (Registry.Reset).
func (w *Window) reset() {
	for i := range w.shards {
		w.shards[i].epoch.Store(0)
		w.shards[i].hist.reset()
	}
}

// wcShard is one WindowCounter ring slot.
type wcShard struct {
	epoch atomic.Int64
	v     atomic.Int64
}

// WindowCounter is a rolling-window counter: the same shard ring as
// Window over a single atomic count per shard.
type WindowCounter struct {
	shardDur time.Duration
	now      func() time.Time
	shards   []wcShard
}

func newWindowCounter(shardDur time.Duration, shards int, now func() time.Time) *WindowCounter {
	if now == nil {
		now = time.Now
	}
	return &WindowCounter{shardDur: shardDur, now: now, shards: make([]wcShard, shards)}
}

// Add increments the current shard by d.
func (w *WindowCounter) Add(d int64) {
	e := w.now().UnixNano() / int64(w.shardDur)
	sh := &w.shards[int(e%int64(len(w.shards)))]
	if old := sh.epoch.Load(); old != e && sh.epoch.CompareAndSwap(old, e) {
		sh.v.Store(0)
	}
	sh.v.Add(d)
}

// Inc increments the current shard by one.
func (w *WindowCounter) Inc() { w.Add(1) }

// Stats sums the trailing window.
func (w *WindowCounter) Stats(window time.Duration) WindowStats {
	if window < w.shardDur {
		window = w.shardDur
	}
	nowE := w.now().UnixNano() / int64(w.shardDur)
	k := int64(window / w.shardDur)
	var count int64
	for i := range w.shards {
		sh := &w.shards[i]
		e := sh.epoch.Load()
		if e == 0 || e <= nowE-k || e > nowE {
			continue
		}
		count += sh.v.Load()
	}
	return WindowStats{Count: count, RatePerSec: float64(count) / window.Seconds()}
}

// reset recycles every shard (Registry.Reset).
func (w *WindowCounter) reset() {
	for i := range w.shards {
		w.shards[i].epoch.Store(0)
		w.shards[i].v.Store(0)
	}
}

// Registry accessors, mirroring Counter/Gauge/Histogram.

// Window returns (creating if needed) the named rolling-window histogram.
func (r *Registry) Window(name string) *Window {
	r.mu.RLock()
	w, ok := r.windows[name]
	r.mu.RUnlock()
	if ok {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok = r.windows[name]; ok {
		return w
	}
	w = newWindow(windowShardDur, windowShardCount, nil)
	r.windows[name] = w
	return w
}

// WindowCounter returns (creating if needed) the named rolling-window
// counter.
func (r *Registry) WindowCounter(name string) *WindowCounter {
	r.mu.RLock()
	w, ok := r.wcounters[name]
	r.mu.RUnlock()
	if ok {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok = r.wcounters[name]; ok {
		return w
	}
	w = newWindowCounter(windowShardDur, windowShardCount, nil)
	r.wcounters[name] = w
	return w
}

// GetWindow returns the named rolling-window histogram of the default
// registry.
func GetWindow(name string) *Window { return defaultRegistry.Window(name) }

// GetWindowCounter returns the named rolling-window counter of the
// default registry.
func GetWindowCounter(name string) *WindowCounter { return defaultRegistry.WindowCounter(name) }

// ObserveWindowed records v into both the cumulative histogram and the
// rolling window of the same name — the usual idiom for a serving-path
// latency that /metricsz reports both ways.
func ObserveWindowed(name string, v float64) {
	defaultRegistry.Histogram(name).Observe(v)
	defaultRegistry.Window(name).Observe(v)
}

// AddWindowed increments both the cumulative counter and the rolling
// window counter of the same name.
func AddWindowed(name string, d int64) {
	defaultRegistry.Counter(name).Add(d)
	defaultRegistry.WindowCounter(name).Add(d)
}

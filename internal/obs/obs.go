// Package obs is the observability substrate of the reproduction: a
// zero-dependency (stdlib-only) process-wide registry of counters, gauges,
// and latency histograms, plus hierarchical wall-time spans (span.go) and
// a machine-readable run Report (report.go).
//
// Every pipeline stage — corpus generation, decoding, supervector
// extraction, TFLLR scaling, SVM training/scoring, DBA boosting rounds,
// fusion — records into the default registry, so any entry point (cmd/lre,
// tests, benches) can snapshot a consistent picture of where time and work
// went. The paper's own evaluation hinges on per-stage cost accounting
// (Table 5's real-time factors); obs makes that accounting a first-class,
// always-on facility instead of ad-hoc stopwatches.
//
// Design constraints:
//
//   - Recording must be cheap enough to leave enabled unconditionally:
//     counters and gauges are single atomics, histograms are a bounded
//     bucket search plus two atomics, and spans cost two time.Now calls.
//     There is no global "enabled" switch to branch on — when no sink
//     (trace/metrics file) is requested the data simply stays in memory.
//   - Handles remain valid across Reset: Reset zeroes values in place so
//     call sites may cache *Counter/*Gauge/*Histogram in package vars.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// numBuckets covers 1 µs … ~16.8 s in powers of two, which spans every
// latency this codebase produces (per-utterance decode through full
// pipeline builds land inside it; anything slower lands in +Inf).
const numBuckets = 25

// Histogram is a fixed exponential-bucket latency histogram (seconds).
// Bucket i counts observations ≤ 1e-6·2^i; the final slot is +Inf.
type Histogram struct {
	counts  [numBuckets + 1]atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	count   atomic.Int64
}

// BucketBound returns the upper bound (seconds) of bucket i, or +Inf for
// the overflow slot.
func BucketBound(i int) float64 {
	if i >= numBuckets {
		return math.Inf(1)
	}
	return 1e-6 * math.Pow(2, float64(i))
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	b := 0
	for bound := 1e-6; b < numBuckets && v > bound; b++ {
		bound *= 2
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile returns an upper-bound estimate of the p-quantile (0 ≤ p ≤ 1)
// from the bucket counts.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	var counts [numBuckets + 1]int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileFromCounts(&counts, total, p)
}

// quantileFromCounts is the shared bucket-walk behind Histogram.Quantile
// and the merged-window quantiles of window.go.
func quantileFromCounts(counts *[numBuckets + 1]int64, total int64, p float64) float64 {
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return math.Inf(1)
}

// reset zeroes the histogram in place.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// maxRoots bounds how many finished root spans a registry retains (a
// benchmark looping over an instrumented stage would otherwise grow the
// trace without bound). Later roots are counted in DroppedSpans.
const maxRoots = 4096

// Registry holds named metrics and the finished root spans of a trace.
// The zero value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	windows   map[string]*Window
	wcounters map[string]*WindowCounter

	spanMu  sync.Mutex
	roots   []*Span
	dropped int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		windows:   make(map[string]*Window),
		wcounters: make(map[string]*WindowCounter),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every convenience function
// operates on.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named latency histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Reset zeroes every metric in place (existing handles stay valid) and
// clears the collected trace.
func (r *Registry) Reset() {
	r.mu.RLock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, w := range r.windows {
		w.reset()
	}
	for _, w := range r.wcounters {
		w.reset()
	}
	r.mu.RUnlock()
	r.spanMu.Lock()
	r.roots = nil
	r.dropped = 0
	r.spanMu.Unlock()
}

// recordRoot files a finished root span into the trace.
func (r *Registry) recordRoot(s *Span) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if len(r.roots) >= maxRoots {
		r.dropped++
		return
	}
	r.roots = append(r.roots, s)
}

// Convenience functions on the default registry.

// GetCounter returns the named counter of the default registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns the named gauge of the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns the named histogram of the default registry.
func GetHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// Add increments a default-registry counter by d.
func Add(name string, d int64) { defaultRegistry.Counter(name).Add(d) }

// Inc increments a default-registry counter by one.
func Inc(name string) { defaultRegistry.Counter(name).Inc() }

// SetGauge stores v into a default-registry gauge.
func SetGauge(name string, v float64) { defaultRegistry.Gauge(name).Set(v) }

// Observe records a latency (seconds) into a default-registry histogram.
func Observe(name string, v float64) { defaultRegistry.Histogram(name).Observe(v) }

// Reset zeroes the default registry (tests and repeated runs).
func Reset() { defaultRegistry.Reset() }

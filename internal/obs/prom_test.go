package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// seededReport builds a deterministic registry snapshot: fixed counter
// and gauge values, one histogram with observations spread across small
// buckets and the overflow bucket, one empty histogram, and a name that
// needs sanitization.
func seededReport() *Report {
	r := NewRegistry()
	r.Counter("serve.http.score.requests").Add(42)
	r.Counter("serve.queue.rejected").Add(3)
	r.Gauge("serve.queue.depth").Set(7)
	r.Gauge("pool.score.utilization").Set(0.875)
	h := r.Histogram("serve.http.score.seconds")
	for _, v := range []float64{1e-6, 2e-6, 5e-4, 5e-4, 0.25, 100.0} {
		h.Observe(v)
	}
	r.Histogram("serve.empty.seconds") // registered but never observed
	r.Counter("weird-name.100%")       // exercises sanitization
	rep := r.Snapshot()
	rep.Meta = map[string]string{"service": "lred", "model_version": "3"}
	return rep
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := seededReport().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"serve.http.score.seconds": "serve_http_score_seconds",
		"weird-name.100%":          "weird_name_100_",
		"100up":                    "_100up",
		"ok_name:sub":              "ok_name:sub",
		"":                         "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestPrometheusRoundTrip parses the rendered exposition back and checks
// the format invariants a scraper relies on: legal metric names,
// monotone nondecreasing cumulative buckets ending in +Inf, and
// _sum/_count agreement with the JSON report.
func TestPrometheusRoundTrip(t *testing.T) {
	rep := seededReport()
	var buf bytes.Buffer
	if err := rep.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	type histState struct {
		lastCum  int64
		lastLE   float64
		sawInf   bool
		infCum   int64
		sum      float64
		count    int64
		sawSum   bool
		sawCount bool
	}
	hists := map[string]*histState{}
	labelRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{le="([^"]+)"\} (\S+)$`)

	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if m := labelRe.FindStringSubmatch(line); m != nil {
			name, leStr, cumStr := m[1], m[2], m[3]
			hs := hists[name]
			if hs == nil {
				hs = &histState{lastLE: math.Inf(-1)}
				hists[name] = hs
			}
			cum, err := strconv.ParseInt(cumStr, 10, 64)
			if err != nil {
				t.Fatalf("%s: bad cumulative count %q", name, cumStr)
			}
			if cum < hs.lastCum {
				t.Fatalf("%s: cumulative bucket decreased (%d after %d)", name, cum, hs.lastCum)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("%s: bad le %q", name, leStr)
				}
			}
			if le <= hs.lastLE {
				t.Fatalf("%s: le not strictly increasing (%g after %g)", name, le, hs.lastLE)
			}
			if hs.sawInf {
				t.Fatalf("%s: bucket after +Inf", name)
			}
			if math.IsInf(le, 1) {
				hs.sawInf, hs.infCum = true, cum
			}
			hs.lastCum, hs.lastLE = cum, le
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if !promNameRe.MatchString(name) {
			t.Fatalf("illegal metric name %q", name)
		}
		switch {
		case strings.HasSuffix(name, "_sum"):
			base := strings.TrimSuffix(name, "_sum")
			if hs, ok := hists[base]; ok {
				hs.sum, _ = strconv.ParseFloat(fields[1], 64)
				hs.sawSum = true
			}
		case strings.HasSuffix(name, "_count"):
			base := strings.TrimSuffix(name, "_count")
			if hs, ok := hists[base]; ok {
				hs.count, _ = strconv.ParseInt(fields[1], 10, 64)
				hs.sawCount = true
			}
		}
	}

	if len(hists) == 0 {
		t.Fatal("no histograms parsed")
	}
	for name, hs := range hists {
		if !hs.sawInf {
			t.Fatalf("%s: no +Inf bucket", name)
		}
		if !hs.sawSum || !hs.sawCount {
			t.Fatalf("%s: missing _sum/_count", name)
		}
		if hs.infCum != hs.count {
			t.Fatalf("%s: +Inf bucket %d != _count %d", name, hs.infCum, hs.count)
		}
	}

	// _sum/_count agree with the JSON report for the seeded histogram.
	hd := rep.Histograms["serve.http.score.seconds"]
	hs := hists["serve_http_score_seconds"]
	if hs == nil {
		t.Fatal("seeded histogram missing from exposition")
	}
	if hs.count != hd.Count {
		t.Fatalf("_count %d != JSON count %d", hs.count, hd.Count)
	}
	if math.Abs(hs.sum-hd.SumSec) > 1e-9*math.Max(1, math.Abs(hd.SumSec)) {
		t.Fatalf("_sum %g != JSON sum %g", hs.sum, hd.SumSec)
	}
}

// TestHistogramDataExplicitOverflow is the regression test for the
// implicit-remainder bug: bucket counts must sum to Count, with the
// overflow (+Inf) bucket always present and explicit (LE == -1 in JSON),
// so no consumer ever has to reconstruct it as Count minus the rest.
func TestHistogramDataExplicitOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.seconds")
	h.Observe(1e-6) // smallest bucket
	h.Observe(0.5)  // mid bucket
	h.Observe(1e9)  // beyond every finite bound: overflow
	d := r.Snapshot().Histograms["x.seconds"]

	var sum int64
	for _, b := range d.Buckets {
		sum += b.Count
	}
	if sum != d.Count {
		t.Fatalf("bucket counts sum to %d, want Count=%d", sum, d.Count)
	}
	last := d.Buckets[len(d.Buckets)-1]
	if last.LE != -1 {
		t.Fatalf("last bucket LE = %g, want -1 (+Inf)", last.LE)
	}
	if last.Count != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", last.Count)
	}

	// The +Inf bucket is explicit even when nothing overflowed.
	h2 := r.Histogram("y.seconds")
	h2.Observe(0.001)
	d2 := r.Snapshot().Histograms["y.seconds"]
	last2 := d2.Buckets[len(d2.Buckets)-1]
	if last2.LE != -1 || last2.Count != 0 {
		t.Fatalf("empty overflow bucket must still be explicit: %+v", d2.Buckets)
	}
	sum = 0
	for _, b := range d2.Buckets {
		sum += b.Count
	}
	if sum != d2.Count {
		t.Fatalf("bucket counts sum to %d, want %d", sum, d2.Count)
	}

	// An empty histogram reports no buckets at all (Count 0, nothing to
	// close).
	r.Histogram("empty.seconds")
	if d3 := r.Snapshot().Histograms["empty.seconds"]; len(d3.Buckets) != 0 || d3.Count != 0 {
		t.Fatalf("empty histogram: %+v", d3)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SpanData is the serializable form of a finished span subtree.
type SpanData struct {
	Name        string             `json:"name"`
	Start       time.Time          `json:"start"`
	DurationSec float64            `json:"duration_sec"`
	Attrs       map[string]float64 `json:"attrs,omitempty"`
	Labels      map[string]string  `json:"labels,omitempty"`
	Children    []*SpanData        `json:"children,omitempty"`
}

// Find returns the first span named name in a depth-first walk of the
// subtree (itself included), or nil. Trace consumers use it to pull a
// stage's measured duration back out of a serialized report.
func (d *SpanData) Find(name string) *SpanData {
	if d.Name == name {
		return d
	}
	for _, c := range d.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	LE    float64 `json:"le"` // upper bound in seconds; +Inf encoded as -1
	Count int64   `json:"count"`
}

// HistogramData is the serializable form of a Histogram. Buckets lists
// every non-empty finite bucket in ascending order, always closed by the
// explicit overflow (+Inf) bucket — even when empty — so the bucket
// counts sum to Count by construction and a cumulative rendering (the
// Prometheus exposition) never has to infer an implicit remainder.
type HistogramData struct {
	Count   int64         `json:"count"`
	SumSec  float64       `json:"sum_sec"`
	MeanSec float64       `json:"mean_sec"`
	P50Sec  float64       `json:"p50_sec"`
	P95Sec  float64       `json:"p95_sec"`
	P99Sec  float64       `json:"p99_sec"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Report is a consistent snapshot of a registry: the trace (finished root
// spans) plus every metric, serializable to indented JSON (WriteJSON) and
// a human-readable text block (String). cmd/lre writes one per run; the
// repository's BENCH_obs.json baseline is exactly this structure.
type Report struct {
	Meta       map[string]string        `json:"meta,omitempty"`
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramData `json:"histograms,omitempty"`
	// Windows holds the rolling 1m/5m views of every windowed metric
	// (window.go); keys share the namespace of Histograms/Counters.
	Windows      map[string]WindowsData `json:"windows,omitempty"`
	Spans        []*SpanData            `json:"spans,omitempty"`
	DroppedSpans int64                  `json:"dropped_spans,omitempty"`
}

// Snapshot captures the default registry.
func Snapshot() *Report { return defaultRegistry.Snapshot() }

// Snapshot captures the registry's current trace and metrics. Only ended
// root spans appear; a root still running is excluded (it files itself on
// End).
func (r *Registry) Snapshot() *Report {
	rep := &Report{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramData),
	}
	r.mu.RLock()
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		rep.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		rep.Histograms[name] = histData(h)
	}
	if len(r.windows)+len(r.wcounters) > 0 {
		rep.Windows = make(map[string]WindowsData, len(r.windows)+len(r.wcounters))
		for name, w := range r.windows {
			rep.Windows[name] = WindowsData{M1: w.Stats(time.Minute), M5: w.Stats(5 * time.Minute)}
		}
		for name, w := range r.wcounters {
			rep.Windows[name] = WindowsData{M1: w.Stats(time.Minute), M5: w.Stats(5 * time.Minute)}
		}
	}
	r.mu.RUnlock()
	r.spanMu.Lock()
	roots := append([]*Span(nil), r.roots...)
	rep.DroppedSpans = r.dropped
	r.spanMu.Unlock()
	for _, s := range roots {
		rep.Spans = append(rep.Spans, spanData(s))
	}
	return rep
}

func histData(h *Histogram) HistogramData {
	d := HistogramData{
		Count:   h.Count(),
		SumSec:  h.Sum(),
		MeanSec: h.Mean(),
		P50Sec:  h.Quantile(0.50),
		P95Sec:  h.Quantile(0.95),
		P99Sec:  h.Quantile(0.99),
	}
	if d.Count == 0 {
		return d
	}
	for i := 0; i < numBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			d.Buckets = append(d.Buckets, BucketCount{LE: BucketBound(i), Count: n})
		}
	}
	// The overflow bucket is always explicit (even at zero) so the
	// bucket counts sum to Count and cumulative renderings close at +Inf.
	d.Buckets = append(d.Buckets, BucketCount{LE: -1, Count: h.counts[numBuckets].Load()})
	return d
}

func spanData(s *Span) *SpanData {
	s.mu.Lock()
	d := &SpanData{
		Name:        s.name,
		Start:       s.start,
		DurationSec: s.dur.Seconds(),
	}
	if !s.ended {
		d.DurationSec = time.Since(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]float64, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	if len(s.labels) > 0 {
		d.Labels = make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			d.Labels[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, spanData(c))
	}
	return d
}

// Find returns the first span named name across the report's roots
// (depth-first), or nil.
func (rep *Report) Find(name string) *SpanData {
	for _, s := range rep.Spans {
		if f := s.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// SpansOnly returns a copy containing only the trace (for -trace-out).
func (rep *Report) SpansOnly() *Report {
	return &Report{Meta: rep.Meta, Spans: rep.Spans, DroppedSpans: rep.DroppedSpans}
}

// MetricsOnly returns a copy containing only counters, gauges,
// histograms, and windows (for -metrics-out and the /metricsz scrape
// path, which must not serialize span trees on every poll).
func (rep *Report) MetricsOnly() *Report {
	return &Report{
		Meta:       rep.Meta,
		Counters:   rep.Counters,
		Gauges:     rep.Gauges,
		Histograms: rep.Histograms,
		Windows:    rep.Windows,
	}
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// String renders a human-readable report: the span forest with durations
// and attributes, then metrics in sorted order.
func (rep *Report) String() string {
	var b strings.Builder
	if len(rep.Spans) > 0 {
		b.WriteString("spans:\n")
		for _, s := range rep.Spans {
			writeSpanText(&b, s, 1)
		}
		if rep.DroppedSpans > 0 {
			fmt.Fprintf(&b, "  (+%d root spans dropped)\n", rep.DroppedSpans)
		}
	}
	writeSortedSection(&b, "counters", rep.Counters, func(v int64) string {
		return fmt.Sprintf("%d", v)
	})
	writeSortedSection(&b, "gauges", rep.Gauges, func(v float64) string {
		return fmt.Sprintf("%g", v)
	})
	writeSortedSection(&b, "histograms", rep.Histograms, func(h HistogramData) string {
		return fmt.Sprintf("count=%d sum=%.4fs mean=%.3gs p50≤%.3gs p99≤%.3gs",
			h.Count, h.SumSec, h.MeanSec, h.P50Sec, h.P99Sec)
	})
	return b.String()
}

func writeSortedSection[V any](b *strings.Builder, title string, m map[string]V, format func(V) string) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%s:\n", title)
	for _, k := range keys {
		fmt.Fprintf(b, "  %-40s %s\n", k, format(m[k]))
	}
}

func writeSpanText(b *strings.Builder, s *SpanData, depth int) {
	fmt.Fprintf(b, "%s%-*s %10.4fs", strings.Repeat("  ", depth), 34-2*depth, s.Name, s.DurationSec)
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%g", k, s.Attrs[k])
	}
	lkeys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		lkeys = append(lkeys, k)
	}
	sort.Strings(lkeys)
	for _, k := range lkeys {
		fmt.Fprintf(b, " %s=%s", k, s.Labels[k])
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpanText(b, c, depth+1)
	}
}

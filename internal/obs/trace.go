package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Request-scoped tracing: W3C trace-context identifiers plus a bounded
// in-memory buffer of finished request traces. The serving tier accepts
// (or mints) a `traceparent` per request, threads a detached span tree
// through enqueue → batch dispatch → per-front-end scoring → fusion, and
// files the finished tree here; /tracez serves the buffer. The same
// identifiers travel in responses and access-log lines, so one id
// correlates the client's view, the server's span tree, and the logs —
// the propagation contract a distributed scatter–gather tier inherits
// as-is (a shard request forwards the traceparent it was called with).
//
// Retention policy (all bounds are fixed at construction):
//   - recent: a ring of the last N finished traces, any outcome;
//   - slowest: the N slowest traces seen since the last reset — latency
//     exemplars that survive long after a spike scrolled out of recent;
//   - exemplars: degraded or errored traces, always admitted — a ring so
//     the newest failures survive, with an overwrite counter so a reader
//     can tell the buffer wrapped.

// NewTraceID returns a fresh 32-hex-digit (128-bit) W3C trace id.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a fresh 16-hex-digit (64-bit) W3C span id.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a zero id would
		// be invalid per spec, so fail loudly rather than emit one.
		panic("obs: crypto/rand: " + err.Error())
	}
	// Guard the all-zero id the spec forbids.
	zero := true
	for _, x := range b {
		if x != 0 {
			zero = false
			break
		}
	}
	if zero {
		b[n-1] = 1
	}
	return hex.EncodeToString(b)
}

// ParseTraceparent parses a W3C `traceparent` header
// (version-traceid-parentid-flags). It accepts any non-ff version whose
// first four fields have the standard widths, per the spec's
// forward-compatibility rule, and rejects all-zero ids. ok is false for
// anything malformed — the caller then mints a fresh trace.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", "", false
	}
	ver, tid, pid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isHex(ver) || !isHex(tid) || !isHex(pid) || !isHex(flags) {
		return "", "", false
	}
	if ver == "ff" || allZero(tid) || allZero(pid) {
		return "", "", false
	}
	return lower(tid), lower(pid), true
}

// Traceparent formats a version-00 traceparent with the sampled flag set
// (every request the daemon traces is recorded).
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'F' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

// TraceEntry is one finished request trace as buffered and served by
// /tracez.
type TraceEntry struct {
	TraceID string `json:"trace_id"`
	// SpanID is the server's own root span id (returned to the client in
	// the response traceparent).
	SpanID string `json:"span_id"`
	// ParentSpanID is the caller's span id when the request carried a
	// traceparent; empty for traces this server minted.
	ParentSpanID string    `json:"parent_span_id,omitempty"`
	Endpoint     string    `json:"endpoint"`
	Start        time.Time `json:"start"`
	DurationSec  float64   `json:"duration_sec"`
	Status       int       `json:"status"`
	ModelVersion int64     `json:"model_version,omitempty"`
	BatchID      int64     `json:"batch_id,omitempty"`
	Degraded     bool      `json:"degraded,omitempty"`
	// Surviving is the front-end set that still contributed to a degraded
	// result.
	Surviving []string `json:"surviving,omitempty"`
	Error     string   `json:"error,omitempty"`
	// Root is the request's span tree (queue wait, batch formation,
	// per-front-end scoring, fusion).
	Root *SpanData `json:"root,omitempty"`
}

// TracezReport is the JSON body of /tracez.
type TracezReport struct {
	// Recent lists the most recent finished traces, newest first.
	Recent []*TraceEntry `json:"recent"`
	// Slowest lists the slowest traces since reset, slowest first.
	Slowest []*TraceEntry `json:"slowest"`
	// Exemplars lists retained degraded/errored traces, newest first.
	Exemplars []*TraceEntry `json:"exemplars"`
	// Added counts every trace ever offered to the buffer.
	Added int64 `json:"added"`
	// ExemplarsEvicted counts degraded/errored traces overwritten after
	// the exemplar ring wrapped.
	ExemplarsEvicted int64 `json:"exemplars_evicted,omitempty"`
}

// TraceBuffer is the bounded in-memory store behind /tracez. All methods
// are safe for concurrent use; Add is O(slowestCap) worst case and
// allocation-free on the common path.
type TraceBuffer struct {
	mu        sync.Mutex
	recent    []*TraceEntry // ring, recentNext is the next write slot
	slowest   []*TraceEntry // kept sorted ascending by duration
	exemplars []*TraceEntry // ring of degraded/errored traces
	recentCap int
	slowCap   int
	exCap     int

	recentNext int
	exNext     int
	added      int64
	exEvicted  int64
}

// NewTraceBuffer sizes a buffer; non-positive caps select the defaults
// (128 recent, 16 slowest, 64 exemplars).
func NewTraceBuffer(recentCap, slowestCap, exemplarCap int) *TraceBuffer {
	if recentCap <= 0 {
		recentCap = 128
	}
	if slowestCap <= 0 {
		slowestCap = 16
	}
	if exemplarCap <= 0 {
		exemplarCap = 64
	}
	return &TraceBuffer{recentCap: recentCap, slowCap: slowestCap, exCap: exemplarCap}
}

// Add files one finished trace.
func (tb *TraceBuffer) Add(e *TraceEntry) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.added++
	// Recent ring.
	if len(tb.recent) < tb.recentCap {
		tb.recent = append(tb.recent, e)
	} else {
		tb.recent[tb.recentNext] = e
	}
	tb.recentNext = (tb.recentNext + 1) % tb.recentCap
	// Slowest-N, sorted ascending so the eviction candidate is slot 0.
	if len(tb.slowest) < tb.slowCap {
		tb.slowest = append(tb.slowest, e)
		sort.Slice(tb.slowest, func(i, j int) bool {
			return tb.slowest[i].DurationSec < tb.slowest[j].DurationSec
		})
	} else if e.DurationSec > tb.slowest[0].DurationSec {
		i := 0
		for i+1 < len(tb.slowest) && tb.slowest[i+1].DurationSec < e.DurationSec {
			tb.slowest[i] = tb.slowest[i+1]
			i++
		}
		tb.slowest[i] = e
	}
	// Degraded/errored exemplars are always admitted.
	if e.Degraded || e.Error != "" || e.Status >= 500 {
		if len(tb.exemplars) < tb.exCap {
			tb.exemplars = append(tb.exemplars, e)
		} else {
			tb.exemplars[tb.exNext] = e
			tb.exEvicted++
		}
		tb.exNext = (tb.exNext + 1) % tb.exCap
	}
}

// Snapshot returns a consistent copy for serialization.
func (tb *TraceBuffer) Snapshot() *TracezReport {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	rep := &TracezReport{
		Recent:           newestFirst(tb.recent, tb.recentNext),
		Exemplars:        newestFirst(tb.exemplars, tb.exNext),
		Added:            tb.added,
		ExemplarsEvicted: tb.exEvicted,
	}
	rep.Slowest = make([]*TraceEntry, len(tb.slowest))
	for i, e := range tb.slowest {
		rep.Slowest[len(tb.slowest)-1-i] = e
	}
	return rep
}

// Reset empties the buffer (tests, metric resets).
func (tb *TraceBuffer) Reset() {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.recent, tb.slowest, tb.exemplars = nil, nil, nil
	tb.recentNext, tb.exNext, tb.added, tb.exEvicted = 0, 0, 0, 0
}

// newestFirst unrolls a ring whose next write slot is next into
// newest-first order.
func newestFirst(ring []*TraceEntry, next int) []*TraceEntry {
	out := make([]*TraceEntry, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		out = append(out, ring[(next-1-i+len(ring))%len(ring)])
	}
	return out
}

package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// manualClock drives window shards deterministically.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestWindowMergesTrailingShards(t *testing.T) {
	clk := newManualClock()
	w := newWindow(10*time.Second, 32, clk.Now)

	// Three shards of observations, 10 s apart.
	w.Observe(0.001)
	w.Observe(0.001)
	clk.Advance(10 * time.Second)
	w.Observe(0.004)
	clk.Advance(10 * time.Second)
	w.Observe(0.016)

	st := w.Stats(time.Minute)
	if st.Count != 4 {
		t.Fatalf("1m count = %d, want 4", st.Count)
	}
	wantRate := 4.0 / 60.0
	if math.Abs(st.RatePerSec-wantRate) > 1e-12 {
		t.Fatalf("1m rate = %g, want %g", st.RatePerSec, wantRate)
	}
	if st.MeanSec <= 0 || st.P50Sec <= 0 || st.P99Sec < st.P50Sec || st.P95Sec < st.P50Sec {
		t.Fatalf("degenerate quantiles: %+v", st)
	}
	// p50 of {1ms,1ms,4ms,16ms} lands in the 1ms-ish bucket; p99 must
	// cover the 16ms observation's bucket upper bound.
	if st.P99Sec < 0.016 {
		t.Fatalf("p99 = %g, want ≥ 0.016", st.P99Sec)
	}
}

func TestWindowExpiresOldShards(t *testing.T) {
	clk := newManualClock()
	w := newWindow(10*time.Second, 32, clk.Now)

	w.Observe(0.002)
	clk.Advance(70 * time.Second) // out of the 1m window, inside 5m
	w.Observe(0.008)

	if got := w.Stats(time.Minute).Count; got != 1 {
		t.Fatalf("1m count = %d, want 1 (old shard must have aged out)", got)
	}
	if got := w.Stats(5 * time.Minute).Count; got != 2 {
		t.Fatalf("5m count = %d, want 2", got)
	}

	clk.Advance(6 * time.Minute) // beyond 5m: everything aged out
	if got := w.Stats(5 * time.Minute).Count; got != 0 {
		t.Fatalf("5m count after 6m idle = %d, want 0", got)
	}
}

func TestWindowShardRecycling(t *testing.T) {
	clk := newManualClock()
	// A tiny ring: 4 shards of 10 s wrap every 40 s, so advancing a full
	// lap must land on a recycled (zeroed) shard, not resurrect old data.
	w := newWindow(10*time.Second, 4, clk.Now)
	w.Observe(1)
	clk.Advance(40 * time.Second)
	w.Observe(2)
	if got := w.Stats(10 * time.Second).Count; got != 1 {
		t.Fatalf("current-shard count = %d, want 1 (lap must recycle)", got)
	}
}

func TestWindowCounter(t *testing.T) {
	clk := newManualClock()
	w := newWindowCounter(10*time.Second, 32, clk.Now)
	w.Add(3)
	clk.Advance(30 * time.Second)
	w.Inc()
	if got := w.Stats(time.Minute).Count; got != 4 {
		t.Fatalf("1m count = %d, want 4", got)
	}
	clk.Advance(50 * time.Second)
	if got := w.Stats(time.Minute).Count; got != 1 {
		t.Fatalf("1m count = %d, want 1 after first shard aged out", got)
	}
	if got := w.Stats(5 * time.Minute).Count; got != 4 {
		t.Fatalf("5m count = %d, want 4", got)
	}
}

func TestWindowConcurrentObserve(t *testing.T) {
	w := newWindow(10*time.Second, 32, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := w.Stats(time.Minute).Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestRegistryWindowsInSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Window("svc.latency").Observe(0.005)
	r.WindowCounter("svc.errors").Add(2)
	rep := r.Snapshot()
	wd, ok := rep.Windows["svc.latency"]
	if !ok {
		t.Fatal("snapshot missing windowed histogram")
	}
	if wd.M1.Count != 1 || wd.M5.Count != 1 {
		t.Fatalf("windowed histogram counts = %+v, want 1/1", wd)
	}
	if wd.M1.RatePerSec <= 0 {
		t.Fatalf("windowed rate = %g, want > 0", wd.M1.RatePerSec)
	}
	ec, ok := rep.Windows["svc.errors"]
	if !ok || ec.M1.Count != 2 {
		t.Fatalf("windowed counter = %+v (ok=%v), want count 2", ec, ok)
	}

	r.Reset()
	rep = r.Snapshot()
	if wd := rep.Windows["svc.latency"]; wd.M1.Count != 0 {
		t.Fatalf("after Reset, windowed count = %d, want 0", wd.M1.Count)
	}
}

func TestObserveWindowedFeedsBoth(t *testing.T) {
	Reset()
	defer Reset()
	ObserveWindowed("test.windowed.seconds", 0.003)
	AddWindowed("test.windowed.errors", 1)
	rep := Snapshot()
	if rep.Histograms["test.windowed.seconds"].Count != 1 {
		t.Fatal("cumulative histogram missed the observation")
	}
	if rep.Windows["test.windowed.seconds"].M1.Count != 1 {
		t.Fatal("window missed the observation")
	}
	if rep.Counters["test.windowed.errors"] != 1 || rep.Windows["test.windowed.errors"].M1.Count != 1 {
		t.Fatal("AddWindowed must feed both the counter and the window")
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Report's
// cumulative metrics, so a standard scraper can consume /metricsz
// without any JSON shim. Only cumulative counters, gauges, and
// histograms are rendered — rates and windowed quantiles are the
// scraper's job (that is the Prometheus data model); the 1m/5m windows
// stay JSON-only for human consumers like lrestat.
//
// Conventions applied:
//   - metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (every
//     other rune becomes '_', a leading digit gains a '_' prefix);
//   - counters gain the conventional `_total` suffix;
//   - histograms render cumulative `_bucket{le="…"}` series ending in
//     the explicit `le="+Inf"` bucket, plus `_sum` and `_count`, with
//     `_count` equal to the `+Inf` bucket by construction;
//   - report meta renders as comments, keeping the output a pure
//     exposition document.

// WritePrometheus renders the report's counters, gauges, and histograms
// in the Prometheus text exposition format.
func (rep *Report) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, k := range sortedKeys(rep.Meta) {
		fmt.Fprintf(&b, "# meta %s %s\n", k, rep.Meta[k])
	}
	for _, k := range sortedKeys(rep.Counters) {
		name := SanitizeMetricName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, rep.Counters[k])
	}
	for _, k := range sortedKeys(rep.Gauges) {
		name := SanitizeMetricName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, formatPromValue(rep.Gauges[k]))
	}
	for _, k := range sortedKeys(rep.Histograms) {
		h := rep.Histograms[k]
		name := SanitizeMetricName(k)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		seenInf := false
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := "+Inf"
			if bk.LE >= 0 {
				le = formatPromValue(bk.LE)
			} else {
				seenInf = true
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		if !seenInf {
			// Reports predating the always-explicit overflow bucket: close
			// the series so every exposition ends in +Inf.
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		}
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", name, formatPromValue(h.SumSec), name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SanitizeMetricName maps an obs metric name (dotted, free-form) onto
// the Prometheus name alphabet.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatPromValue renders a float the way Prometheus expects (shortest
// round-trip representation; exposition readers accept e-notation).
func formatPromValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

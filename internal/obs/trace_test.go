package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	pid := "00f067aa0ba902b7"
	cases := []struct {
		in       string
		ok       bool
		wantTID  string
		wantPID  string
		describe string
	}{
		{"00-" + tid + "-" + pid + "-01", true, tid, pid, "canonical"},
		{"00-" + strings.ToUpper(tid) + "-" + pid + "-01", true, tid, pid, "uppercase hex is normalized"},
		{"cc-" + tid + "-" + pid + "-01", true, tid, pid, "future version accepted"},
		{"cc-" + tid + "-" + pid + "-01-extra", true, tid, pid, "future version with suffix"},
		{"ff-" + tid + "-" + pid + "-01", false, "", "", "version ff forbidden"},
		{"00-" + strings.Repeat("0", 32) + "-" + pid + "-01", false, "", "", "zero trace id"},
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false, "", "", "zero parent id"},
		{"00-" + tid + "-" + pid + "-0g", false, "", "", "non-hex flags"},
		{"00-" + tid[:31] + "-" + pid + "-01", false, "", "", "short trace id"},
		{"", false, "", "", "empty"},
		{"garbage", false, "", "", "garbage"},
	}
	for _, c := range cases {
		gotTID, gotPID, ok := ParseTraceparent(c.in)
		if ok != c.ok || gotTID != c.wantTID || gotPID != c.wantPID {
			t.Errorf("%s: ParseTraceparent(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.describe, c.in, gotTID, gotPID, ok, c.wantTID, c.wantPID, c.ok)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("id widths: trace %d span %d", len(tid), len(sid))
	}
	h := Traceparent(tid, sid)
	gotTID, gotPID, ok := ParseTraceparent(h)
	if !ok || gotTID != tid || gotPID != sid {
		t.Fatalf("round trip of %q failed: (%q, %q, %v)", h, gotTID, gotPID, ok)
	}
	if NewTraceID() == tid {
		t.Fatal("two NewTraceID calls returned the same id")
	}
}

func entry(id string, durSec float64, degraded bool, errMsg string) *TraceEntry {
	return &TraceEntry{
		TraceID:     id,
		SpanID:      "span" + id,
		Endpoint:    "score",
		Start:       time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		DurationSec: durSec,
		Status:      200,
		Degraded:    degraded,
		Error:       errMsg,
	}
}

func TestTraceBufferRecentRing(t *testing.T) {
	tb := NewTraceBuffer(4, 2, 4)
	for i := 0; i < 10; i++ {
		tb.Add(entry(fmt.Sprintf("t%02d", i), 0.001, false, ""))
	}
	rep := tb.Snapshot()
	if rep.Added != 10 {
		t.Fatalf("added = %d, want 10", rep.Added)
	}
	if len(rep.Recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(rep.Recent))
	}
	// Newest first: t09, t08, t07, t06.
	for i, want := range []string{"t09", "t08", "t07", "t06"} {
		if rep.Recent[i].TraceID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, rep.Recent[i].TraceID, want)
		}
	}
}

func TestTraceBufferSlowestRetention(t *testing.T) {
	tb := NewTraceBuffer(2, 3, 2)
	durs := []float64{0.010, 0.002, 0.500, 0.004, 0.100, 0.001, 0.250}
	for i, d := range durs {
		tb.Add(entry(fmt.Sprintf("t%d", i), d, false, ""))
	}
	rep := tb.Snapshot()
	if len(rep.Slowest) != 3 {
		t.Fatalf("slowest len = %d, want 3", len(rep.Slowest))
	}
	// Slowest first: 0.500 (t2), 0.250 (t6), 0.100 (t4) — the slow
	// outliers survive even though the recent ring (cap 2) scrolled past
	// them long ago.
	want := []string{"t2", "t6", "t4"}
	for i := range want {
		if rep.Slowest[i].TraceID != want[i] {
			t.Fatalf("slowest[%d] = %s (%.3fs), want %s", i, rep.Slowest[i].TraceID, rep.Slowest[i].DurationSec, want[i])
		}
	}
}

func TestTraceBufferExemplarRetention(t *testing.T) {
	tb := NewTraceBuffer(2, 2, 3)
	tb.Add(entry("ok1", 0.001, false, ""))
	tb.Add(entry("deg1", 0.001, true, ""))
	tb.Add(entry("err1", 0.001, false, "scoring failed"))
	tb.Add(entry("ok2", 0.001, false, ""))
	tb.Add(entry("deg2", 0.001, true, ""))

	rep := tb.Snapshot()
	if len(rep.Exemplars) != 3 {
		t.Fatalf("exemplars len = %d, want 3", len(rep.Exemplars))
	}
	for i, want := range []string{"deg2", "err1", "deg1"} {
		if rep.Exemplars[i].TraceID != want {
			t.Fatalf("exemplars[%d] = %s, want %s", i, rep.Exemplars[i].TraceID, want)
		}
	}
	// A fourth failure wraps the ring: the oldest exemplar is evicted and
	// the eviction is counted, never silent.
	tb.Add(entry("deg3", 0.001, true, ""))
	rep = tb.Snapshot()
	if rep.ExemplarsEvicted != 1 {
		t.Fatalf("evicted = %d, want 1", rep.ExemplarsEvicted)
	}
	if rep.Exemplars[0].TraceID != "deg3" {
		t.Fatalf("exemplars[0] = %s, want deg3", rep.Exemplars[0].TraceID)
	}
	// 5xx responses are exemplars too, even when not degraded.
	e := entry("boom", 0.001, false, "")
	e.Status = 503
	tb.Add(e)
	if got := tb.Snapshot().Exemplars[0].TraceID; got != "boom" {
		t.Fatalf("5xx exemplar missing: got %s", got)
	}
}

func TestTraceBufferReset(t *testing.T) {
	tb := NewTraceBuffer(2, 2, 2)
	tb.Add(entry("a", 1, true, ""))
	tb.Reset()
	rep := tb.Snapshot()
	if rep.Added != 0 || len(rep.Recent) != 0 || len(rep.Slowest) != 0 || len(rep.Exemplars) != 0 {
		t.Fatalf("reset did not empty the buffer: %+v", rep)
	}
}

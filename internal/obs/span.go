package obs

import (
	"sync"
	"time"
)

// Span is one timed region of the pipeline. Spans form trees: a root span
// ("pipeline.build", "table5", "dba.run") is created with StartSpan and
// files itself into its registry's trace on End; stages within it are
// children created with StartChild. Spans carry numeric attributes
// (counts, RTFs) and string labels (front-end names, methods), so the
// serialized trace is self-describing.
//
// Spans are safe for concurrent use: parallel stages may call StartChild
// on a shared parent from many goroutines.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    map[string]float64
	labels   map[string]string
	children []*Span
	reg      *Registry // non-nil on roots only
}

// StartSpan begins a root span recorded in the default registry.
func StartSpan(name string) *Span { return defaultRegistry.StartSpan(name) }

// NewSpan begins a detached root span that never files into a registry
// trace — the per-request tracing idiom: the serving tier owns the
// span's lifecycle and hands the finished tree to a TraceBuffer instead
// of the process-wide trace (which would otherwise fill its bounded
// root list with request noise).
func NewSpan(name string) *Span { return &Span{name: name, start: time.Now()} }

// Data serializes the span subtree (running spans report their elapsed
// time so far).
func (s *Span) Data() *SpanData { return spanData(s) }

// StartSpan begins a root span recorded in this registry.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), reg: r}
}

// StartChild begins a child span. Children end independently of the
// parent; a parent ending first simply stops attributing the child's tail
// to itself (the trace keeps both durations).
func (s *Span) StartChild(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildOf is StartChild when parent is non-nil and a default-registry root
// span otherwise — the ctx-free idiom for functions that may run either
// standalone or nested under a caller's span.
func ChildOf(parent *Span, name string) *Span {
	if parent == nil {
		return StartSpan(name)
	}
	return parent.StartChild(name)
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// SetAttr records a numeric attribute (count, RTF, dimension…).
func (s *Span) SetAttr(key string, v float64) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]float64)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// SetLabel records a string attribute (front-end name, method…).
func (s *Span) SetLabel(key, v string) {
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string)
	}
	s.labels[key] = v
	s.mu.Unlock()
}

// End stops the clock (idempotent) and, for root spans, files the span
// into the registry trace. It returns the span duration.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	d := s.dur
	reg := s.reg
	s.reg = nil // record once even if End races or repeats
	s.mu.Unlock()
	if reg != nil {
		reg.recordRoot(s)
	}
	return d
}

// Duration returns the measured duration (or the running elapsed time if
// the span has not ended).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

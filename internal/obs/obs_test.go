package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if g := r.Gauge("g").Value(); g != 999 {
		t.Fatalf("gauge = %g, want 999", g)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(1e-5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 90*1e-5 + 10*0.5; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	if p50 := h.Quantile(0.5); p50 > 1e-3 {
		t.Fatalf("p50 = %g, expected a fast bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.25 || p99 > 2 {
		t.Fatalf("p99 = %g, expected a slow bucket", p99)
	}
	// Overflow bucket.
	h.Observe(100)
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("max quantile = %g, want +Inf", q)
	}
}

func TestSpanTreeAndTrace(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("pipeline")
	root.SetLabel("scale", "tiny")
	c1 := root.StartChild("decode")
	c1.SetAttr("utterances", 3)
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := root.StartChild("score")
	c2.End()
	root.End()

	rep := r.Snapshot()
	if len(rep.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(rep.Spans))
	}
	top := rep.Spans[0]
	if top.Name != "pipeline" || len(top.Children) != 2 {
		t.Fatalf("bad tree: %+v", top)
	}
	if top.DurationSec <= 0 || top.DurationSec < top.Children[0].DurationSec {
		t.Fatalf("parent duration %g vs child %g", top.DurationSec, top.Children[0].DurationSec)
	}
	if d := rep.Find("decode"); d == nil || d.Attrs["utterances"] != 3 {
		t.Fatalf("Find(decode) = %+v", d)
	}
	if rep.Find("nope") != nil {
		t.Fatal("Find invented a span")
	}
}

func TestSpanEndIdempotentAndConcurrentChildren(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("root")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := root.StartChild("child")
			c.SetAttr("w", float64(w))
			c.End()
		}(w)
	}
	wg.Wait()
	root.End()
	root.End() // must not double-record
	rep := r.Snapshot()
	if len(rep.Spans) != 1 {
		t.Fatalf("root recorded %d times", len(rep.Spans))
	}
	if n := len(rep.Spans[0].Children); n != 16 {
		t.Fatalf("%d children, want 16", n)
	}
}

func TestChildOf(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("p")
	if c := ChildOf(parent, "c"); c == nil {
		t.Fatal("nil child")
	}
	parent.End()
	if len(r.Snapshot().Spans[0].Children) != 1 {
		t.Fatal("ChildOf did not attach to parent")
	}
	// nil parent → default-registry root
	Reset()
	s := ChildOf(nil, "standalone")
	s.End()
	if Snapshot().Find("standalone") == nil {
		t.Fatal("ChildOf(nil) did not create a root span")
	}
	Reset()
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("utts").Add(7)
	r.Gauge("dim").Set(3540)
	r.Histogram("lat").Observe(0.01)
	s := r.StartSpan("run")
	s.End()

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Counters["utts"] != 7 || back.Gauges["dim"] != 3540 {
		t.Fatalf("metrics lost: %+v", back)
	}
	if back.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram lost: %+v", back.Histograms)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "run" {
		t.Fatalf("spans lost: %+v", back.Spans)
	}
}

func TestReportTextAndSubsets(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	sp := r.StartSpan("stage")
	sp.SetAttr("n", 5)
	sp.End()
	rep := r.Snapshot()
	text := rep.String()
	for _, want := range []string{"spans:", "stage", "counters:", "a.count"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
	if so := rep.SpansOnly(); len(so.Counters) != 0 || len(so.Spans) != 1 {
		t.Fatalf("SpansOnly wrong: %+v", so)
	}
	if mo := rep.MetricsOnly(); len(mo.Spans) != 0 || mo.Counters["a.count"] != 2 {
		t.Fatalf("MetricsOnly wrong: %+v", mo)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("keep")
	c.Add(5)
	h := r.Histogram("lat")
	h.Observe(1)
	r.StartSpan("s").End()
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset did not zero values")
	}
	if len(r.Snapshot().Spans) != 0 {
		t.Fatal("Reset did not clear trace")
	}
	c.Add(1) // cached handle still wired to the registry
	if r.Snapshot().Counters["keep"] != 1 {
		t.Fatal("handle detached after Reset")
	}
}

func TestRootSpanCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxRoots+10; i++ {
		r.StartSpan("s").End()
	}
	rep := r.Snapshot()
	if len(rep.Spans) != maxRoots {
		t.Fatalf("retained %d roots, want %d", len(rep.Spans), maxRoots)
	}
	if rep.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", rep.DroppedSpans)
	}
}

// Benchmarks document the always-on recording cost (the ≤2% pipeline
// overhead budget rests on these being tens of nanoseconds).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterLookupInc(b *testing.B) {
	r := NewRegistry()
	r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("c").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	r := NewRegistry()
	parent := r.StartSpan("parent")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parent.StartChild("c").End()
	}
}

package feats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func testSignal(seconds float64, freq float64) []float64 {
	sr := 8000.0
	n := int(seconds * sr)
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = 0.5 * math.Sin(2*math.Pi*freq*float64(i)/sr)
	}
	return sig
}

func noisySignal(r *rng.RNG, seconds float64) []float64 {
	n := int(seconds * 8000)
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = 0.3 * r.Norm()
	}
	return sig
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.HighFreqHz = 9000
	if bad.Validate() == nil {
		t.Error("accepted HighFreqHz above Nyquist")
	}
	bad2 := good
	bad2.NumFilters = 5
	if bad2.Validate() == nil {
		t.Error("accepted NumFilters < NumCeps")
	}
	bad3 := good
	bad3.SampleRate = 0
	if bad3.Validate() == nil {
		t.Error("accepted zero sample rate")
	}
}

func TestMFCCFrameCountAndDim(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	sig := testSignal(1.0, 440) // 1 second
	frames := e.MFCC(sig)
	// (8000 - 200)/80 + 1 = 98 full frames.
	if len(frames) != 98 {
		t.Fatalf("frame count = %d, want 98", len(frames))
	}
	for _, f := range frames {
		if len(f) != 13 {
			t.Fatalf("MFCC dim = %d", len(f))
		}
	}
}

func TestMFCCDistinguishesSpectra(t *testing.T) {
	// Frames of a 300 Hz tone and a 2500 Hz tone must have clearly
	// different cepstra.
	e := NewExtractor(DefaultConfig())
	a := e.MFCC(testSignal(0.5, 300))
	b := e.MFCC(testSignal(0.5, 2500))
	var dist float64
	for j := 1; j < 13; j++ { // skip c0 (energy, equal here)
		d := a[10][j] - b[10][j]
		dist += d * d
	}
	if math.Sqrt(dist) < 1.0 {
		t.Fatalf("MFCC distance between distinct tones too small: %v", math.Sqrt(dist))
	}
}

func TestMFCCStableAcrossFrames(t *testing.T) {
	// A stationary tone should give near-identical interior frames.
	e := NewExtractor(DefaultConfig())
	fr := e.MFCC(testSignal(0.5, 800))
	for j := 0; j < 13; j++ {
		if math.Abs(fr[10][j]-fr[30][j]) > 1e-6 {
			t.Fatalf("stationary signal cepstra differ at coeff %d: %v vs %v", j, fr[10][j], fr[30][j])
		}
	}
}

func TestPLPFrames(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	fr := e.PLP(testSignal(0.3, 600))
	if len(fr) == 0 {
		t.Fatal("no PLP frames")
	}
	for _, f := range fr {
		if len(f) != 13 {
			t.Fatalf("PLP dim = %d", len(f))
		}
		for j, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("PLP coeff %d not finite: %v", j, v)
			}
		}
	}
}

func TestPLPDistinguishesSpectra(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	a := e.PLP(testSignal(0.3, 300))
	b := e.PLP(testSignal(0.3, 2500))
	var dist float64
	for j := 1; j < 13; j++ {
		d := a[5][j] - b[5][j]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.1 {
		t.Fatalf("PLP distance too small: %v", math.Sqrt(dist))
	}
}

func TestWithDeltasDimension(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	fr := e.WithDeltas(e.MFCC(testSignal(0.3, 500)))
	for _, f := range fr {
		if len(f) != 39 {
			t.Fatalf("full dim = %d, want 39", len(f))
		}
	}
	if e.FullDim() != 39 || e.Dim() != 13 {
		t.Fatalf("Dim()/FullDim() = %d/%d", e.Dim(), e.FullDim())
	}
}

func TestCMVN(t *testing.T) {
	r := rng.New(1)
	e := NewExtractor(DefaultConfig())
	fr := e.MFCCWithDeltasCMVN(noisySignal(r, 1.0))
	dim := len(fr[0])
	n := float64(len(fr))
	for j := 0; j < dim; j++ {
		var mean, varAcc float64
		for _, f := range fr {
			mean += f[j]
		}
		mean /= n
		for _, f := range fr {
			d := f[j] - mean
			varAcc += d * d
		}
		varAcc /= n
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("dim %d mean after CMVN = %v", j, mean)
		}
		if math.Abs(varAcc-1) > 1e-6 && varAcc > 1e-12 {
			t.Fatalf("dim %d variance after CMVN = %v", j, varAcc)
		}
	}
}

func TestCMVNEmptyAndConstant(t *testing.T) {
	CMVN(nil) // must not panic
	frames := [][]float64{{5, 5}, {5, 5}}
	CMVN(frames)
	for _, f := range frames {
		for _, v := range f {
			if v != 0 {
				t.Fatalf("constant dim not centered: %v", v)
			}
		}
	}
}

func TestFramesPerSecond(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	if e.FramesPerSecond() != 100 {
		t.Fatalf("FramesPerSecond = %v", e.FramesPerSecond())
	}
}

func TestShortSignal(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	if got := e.MFCC(make([]float64, 50)); len(got) != 0 {
		t.Fatalf("sub-frame signal yielded %d frames", len(got))
	}
}

func TestEnergyVAD(t *testing.T) {
	// 1 s of silence, 1 s of tone, 1 s of silence.
	sr := 8000
	sig := make([]float64, 3*sr)
	for i := sr; i < 2*sr; i++ {
		sig[i] = 0.5 * math.Sin(2*math.Pi*500*float64(i)/float64(sr))
	}
	// Add a faint noise floor so log energies are finite.
	r := rng.New(7)
	for i := range sig {
		sig[i] += 0.001 * r.Norm()
	}
	e := NewExtractor(DefaultConfig())
	vad := e.EnergyVAD(sig, 10)
	if len(vad) == 0 {
		t.Fatal("no VAD decisions")
	}
	// Middle second should be speech, edges silence.
	mid, edge := 0, 0
	midTotal, edgeTotal := 0, 0
	for i, s := range vad {
		tMs := float64(i)*10 + 12.5
		switch {
		case tMs > 1100 && tMs < 1900:
			midTotal++
			if s {
				mid++
			}
		case tMs < 900 || tMs > 2100:
			edgeTotal++
			if s {
				edge++
			}
		}
	}
	if float64(mid)/float64(midTotal) < 0.9 {
		t.Fatalf("tone region marked speech only %d/%d", mid, midTotal)
	}
	if float64(edge)/float64(edgeTotal) > 0.1 {
		t.Fatalf("silence marked speech %d/%d", edge, edgeTotal)
	}
}

func TestApplyVAD(t *testing.T) {
	frames := [][]float64{{1}, {2}, {3}}
	out := ApplyVAD(frames, []bool{true, false, true})
	if len(out) != 2 || out[0][0] != 1 || out[1][0] != 3 {
		t.Fatalf("ApplyVAD = %v", out)
	}
	if got := ApplyVAD(frames, []bool{true}); len(got) != 1 {
		t.Fatal("length clamp broken")
	}
	if e := NewExtractor(DefaultConfig()).EnergyVAD(nil, 6); e != nil {
		t.Fatal("empty signal should give nil")
	}
}

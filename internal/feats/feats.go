// Package feats implements the acoustic feature extractors used by the
// paper's front-ends: MFCC (13 coefficients including c0, plus Δ and ΔΔ)
// and a PLP-style analysis (12 LP-cepstral coefficients plus c0, plus Δ and
// ΔΔ, i.e. 39 dimensions total), both computed every 10 ms over 25 ms
// Hamming windows, with per-utterance cepstral mean subtraction and
// variance normalization (CMVN) as described in Section 4.1.
package feats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
)

// Config controls framing and filterbank analysis shared by both
// extractors.
type Config struct {
	SampleRate   float64 // Hz, 8000 for telephone speech
	FrameLenMs   float64 // analysis window, 25 ms in the paper
	FrameHopMs   float64 // frame advance, 10 ms in the paper
	NumFilters   int     // mel filters (23 typical for 8 kHz)
	LowFreqHz    float64 // filterbank lower edge
	HighFreqHz   float64 // filterbank upper edge
	NumCeps      int     // cepstral coefficients including c0
	PreEmphasis  float64 // pre-emphasis coefficient
	DeltaWindow  int     // regression window for Δ features
	LPCOrder     int     // PLP path only
	CompressionP float64 // PLP intensity-loudness power (0.33)
}

// DefaultConfig returns the paper's telephone-bandwidth configuration.
func DefaultConfig() Config {
	return Config{
		SampleRate:   8000,
		FrameLenMs:   25,
		FrameHopMs:   10,
		NumFilters:   23,
		LowFreqHz:    100,
		HighFreqHz:   3800,
		NumCeps:      13,
		PreEmphasis:  0.97,
		DeltaWindow:  2,
		LPCOrder:     12,
		CompressionP: 0.33,
	}
}

func (c Config) frameLen() int { return int(c.SampleRate * c.FrameLenMs / 1000) }
func (c Config) frameHop() int { return int(c.SampleRate * c.FrameHopMs / 1000) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("feats: non-positive sample rate %v", c.SampleRate)
	}
	if c.frameLen() <= 0 || c.frameHop() <= 0 {
		return fmt.Errorf("feats: frame length/hop must be positive")
	}
	if c.NumFilters < c.NumCeps {
		return fmt.Errorf("feats: NumFilters (%d) must be >= NumCeps (%d)", c.NumFilters, c.NumCeps)
	}
	if c.HighFreqHz > c.SampleRate/2 {
		return fmt.Errorf("feats: HighFreqHz %v above Nyquist", c.HighFreqHz)
	}
	return nil
}

// Extractor computes framed cepstral features from raw samples.
type Extractor struct {
	cfg    Config
	window []float64
	fb     *dsp.MelFilterbank
	nfft   int
}

// NewExtractor builds an extractor; it panics on invalid configuration
// (configuration is programmer-supplied, not user input).
func NewExtractor(cfg Config) *Extractor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.frameLen()
	nfft := dsp.NextPow2(n)
	return &Extractor{
		cfg:    cfg,
		window: dsp.HammingWindow(n),
		fb:     dsp.NewMelFilterbank(cfg.NumFilters, nfft, cfg.SampleRate, cfg.LowFreqHz, cfg.HighFreqHz),
		nfft:   nfft,
	}
}

// MFCC returns the static 13-dimensional MFCC frames of the signal.
func (e *Extractor) MFCC(signal []float64) [][]float64 {
	sig := make([]float64, len(signal))
	copy(sig, signal)
	dsp.PreEmphasize(sig, e.cfg.PreEmphasis)
	frames := dsp.Frame(sig, e.cfg.frameLen(), e.cfg.frameHop())
	out := make([][]float64, 0, len(frames))
	for _, f := range frames {
		dsp.ApplyWindow(f, e.window)
		ps := dsp.PowerSpectrum(f, e.nfft)
		logE := e.fb.Apply(ps, 1e-10)
		out = append(out, dsp.DCT2(logE, e.cfg.NumCeps))
	}
	return out
}

// PLP returns PLP-style static frames: filterbank energies are
// cube-root compressed (intensity–loudness law), converted back to an
// autocorrelation by inverse DCT approximation, fit with an all-pole model
// of order LPCOrder, and converted to NumCeps LP-cepstra (c0 = log gain).
func (e *Extractor) PLP(signal []float64) [][]float64 {
	sig := make([]float64, len(signal))
	copy(sig, signal)
	dsp.PreEmphasize(sig, e.cfg.PreEmphasis)
	frames := dsp.Frame(sig, e.cfg.frameLen(), e.cfg.frameHop())
	out := make([][]float64, 0, len(frames))
	nf := e.cfg.NumFilters
	for _, f := range frames {
		dsp.ApplyWindow(f, e.window)
		ps := dsp.PowerSpectrum(f, e.nfft)
		energies := e.fb.Energies(ps)
		// Equal-loudness-ish emphasis and intensity-loudness compression.
		for i := range energies {
			if energies[i] < 1e-10 {
				energies[i] = 1e-10
			}
			energies[i] = math.Pow(energies[i], e.cfg.CompressionP)
		}
		// Build a symmetric "spectrum" over 2·(nf+1) points and take the
		// inverse FFT to obtain an autocorrelation sequence (standard PLP
		// trick: treat compressed filterbank as a spectral envelope).
		m := dsp.NextPow2(2 * (nf + 1))
		buf := make([]complex128, m)
		// One-sided envelope: DC, filters, Nyquist; mirror for the rest.
		buf[0] = complex(energies[0], 0)
		for i := 0; i < nf; i++ {
			buf[i+1] = complex(energies[i], 0)
		}
		for i := nf + 1; i <= m/2; i++ {
			buf[i] = complex(energies[nf-1], 0)
		}
		for i := 1; i < m/2; i++ {
			buf[m-i] = buf[i]
		}
		dsp.IFFT(buf)
		r := make([]float64, e.cfg.LPCOrder+1)
		for i := range r {
			r[i] = real(buf[i])
		}
		lpc, _, gain := dsp.LevinsonDurbin(r, e.cfg.LPCOrder)
		out = append(out, dsp.LPCToCepstrum(lpc, gain, e.cfg.NumCeps))
	}
	return out
}

// WithDeltas appends Δ and ΔΔ coefficients to each static frame, tripling
// the dimension.
func (e *Extractor) WithDeltas(static [][]float64) [][]float64 {
	d1 := dsp.Deltas(static, e.cfg.DeltaWindow)
	d2 := dsp.Deltas(d1, e.cfg.DeltaWindow)
	out := make([][]float64, len(static))
	for t := range static {
		row := make([]float64, 0, 3*len(static[t]))
		row = append(row, static[t]...)
		row = append(row, d1[t]...)
		row = append(row, d2[t]...)
		out[t] = row
	}
	return out
}

// CMVN applies per-utterance cepstral mean subtraction and variance
// normalization in place: each dimension is shifted to zero mean and scaled
// to unit variance (dimensions with zero variance are left centered).
func CMVN(frames [][]float64) {
	if len(frames) == 0 {
		return
	}
	dim := len(frames[0])
	mean := make([]float64, dim)
	for _, f := range frames {
		for j, v := range f {
			mean[j] += v
		}
	}
	n := float64(len(frames))
	for j := range mean {
		mean[j] /= n
	}
	variance := make([]float64, dim)
	for _, f := range frames {
		for j, v := range f {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}
	for _, f := range frames {
		for j := range f {
			f[j] -= mean[j]
			if variance[j] > 1e-12 {
				f[j] /= math.Sqrt(variance[j])
			}
		}
	}
}

// MFCCWithDeltasCMVN is the full paper pipeline for the DNN-HMM front-end
// input features: 13 static + Δ + ΔΔ, normalized to zero mean and unit
// variance per utterance.
func (e *Extractor) MFCCWithDeltasCMVN(signal []float64) [][]float64 {
	f := e.WithDeltas(e.MFCC(signal))
	CMVN(f)
	return f
}

// PLPWithDeltasCMVN is the 39-dimensional PLP pipeline used by the GMM-HMM
// front-ends.
func (e *Extractor) PLPWithDeltasCMVN(signal []float64) [][]float64 {
	f := e.WithDeltas(e.PLP(signal))
	CMVN(f)
	return f
}

// Dim returns the static feature dimension.
func (e *Extractor) Dim() int { return e.cfg.NumCeps }

// FullDim returns the dimension after Δ and ΔΔ appending.
func (e *Extractor) FullDim() int { return 3 * e.cfg.NumCeps }

// FramesPerSecond returns the frame rate implied by the hop.
func (e *Extractor) FramesPerSecond() float64 { return 1000 / e.cfg.FrameHopMs }

// EnergyVAD performs simple energy-based voice activity detection over the
// extractor's framing: a frame is speech when its log energy exceeds the
// utterance's noise floor (an energy percentile) by marginDb decibels.
// Phonotactic front-ends use it to drop silence before decoding; the
// paper's recognizers map non-speech to dedicated units instead, so VAD is
// optional in this pipeline.
func (e *Extractor) EnergyVAD(signal []float64, marginDb float64) []bool {
	frames := dsp.Frame(signal, e.cfg.frameLen(), e.cfg.frameHop())
	if len(frames) == 0 {
		return nil
	}
	logE := make([]float64, len(frames))
	for i, f := range frames {
		var en float64
		for _, v := range f {
			en += v * v
		}
		if en < 1e-12 {
			en = 1e-12
		}
		logE[i] = 10 * math.Log10(en)
	}
	// Noise floor: 10th percentile of frame energies.
	sorted := append([]float64(nil), logE...)
	sort.Float64s(sorted)
	floor := sorted[len(sorted)/10]
	out := make([]bool, len(frames))
	for i, le := range logE {
		out[i] = le > floor+marginDb
	}
	return out
}

// ApplyVAD filters feature frames by the VAD decisions (lengths are
// clamped to the shorter of the two).
func ApplyVAD(frames [][]float64, speech []bool) [][]float64 {
	n := len(frames)
	if len(speech) < n {
		n = len(speech)
	}
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		if speech[i] {
			out = append(out, frames[i])
		}
	}
	return out
}

package frontend

import (
	"math"
	"testing"

	"repro/internal/align"
	"repro/internal/phones"
	"repro/internal/rng"
	"repro/internal/synthlang"
)

func testLangs() []*synthlang.Language {
	return synthlang.Generate(synthlang.DefaultConfig(), 42)
}

func TestStandardSix(t *testing.T) {
	fes := StandardSix(7)
	if len(fes) != 6 {
		t.Fatalf("got %d front-ends", len(fes))
	}
	wantSizes := map[string]int{"HU": 59, "RU": 50, "CZ": 43, "EN-DNN": 47, "MA": 64, "EN-GMM": 47}
	wantKinds := map[string]Kind{"HU": ANNHMM, "RU": ANNHMM, "CZ": ANNHMM, "EN-DNN": DNNHMM, "MA": GMMHMM, "EN-GMM": GMMHMM}
	for _, fe := range fes {
		if fe.Set.Size != wantSizes[fe.Name] {
			t.Errorf("%s inventory %d, want %d", fe.Name, fe.Set.Size, wantSizes[fe.Name])
		}
		if fe.Kind != wantKinds[fe.Name] {
			t.Errorf("%s kind %v", fe.Name, fe.Kind)
		}
		if err := fe.Set.Validate(); err != nil {
			t.Errorf("%s: %v", fe.Name, err)
		}
	}
}

func TestKindString(t *testing.T) {
	if GMMHMM.String() != "GMM-HMM" || DNNHMM.String() != "DNN-HMM" || ANNHMM.String() != "ANN-HMM" {
		t.Fatal("Kind.String wrong")
	}
}

func TestDecodeProducesValidLattice(t *testing.T) {
	langs := testLangs()
	fe := New("HU", ANNHMM, 59, 1)
	r := rng.New(2)
	spk := synthlang.NewSpeaker(r, 0)
	u := langs[0].Sample(r, 10, spk, synthlang.ChannelCTSClean)
	l := fe.Decode(r, u)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge phones must be within the front-end inventory.
	for _, e := range l.Edges {
		if e.Phone < 0 || e.Phone >= fe.Set.Size {
			t.Fatalf("edge phone %d out of inventory", e.Phone)
		}
	}
}

func TestDecodeDeterministicGivenStream(t *testing.T) {
	langs := testLangs()
	fe := New("CZ", ANNHMM, 43, 3)
	mk := func() int {
		r := rng.New(9)
		spk := synthlang.NewSpeaker(r, 0)
		u := langs[1].Sample(r, 5, spk, synthlang.ChannelCTSClean)
		return fe.Decode(r, u).NumEdges()
	}
	if mk() != mk() {
		t.Fatal("decoding not deterministic")
	}
}

func TestDecodeLengthTracksDuration(t *testing.T) {
	langs := testLangs()
	fe := New("RU", ANNHMM, 50, 4)
	r := rng.New(5)
	spk := synthlang.NewSpeaker(r, 0)
	short := fe.Decode(r, langs[2].Sample(r, 3, spk, synthlang.ChannelCTSClean))
	long := fe.Decode(r, langs[2].Sample(r, 30, spk, synthlang.ChannelCTSClean))
	if long.NumNodes < 5*short.NumNodes {
		t.Fatalf("30s lattice (%d nodes) not much longer than 3s (%d)", long.NumNodes, short.NumNodes)
	}
}

// decodeAccuracy measures edit-distance phone accuracy of the simulated
// decoder's best path against the mapped reference.
func decodeAccuracy(fe *FrontEnd, ch synthlang.Channel, seed uint64) float64 {
	langs := testLangs()
	r := rng.New(seed)
	spk := synthlang.SpeakerProfile{Rate: 1, SubstitutionProb: 0, PitchHz: 150}
	var agg align.Counts
	for trial := 0; trial < 10; trial++ {
		u := langs[trial%len(langs)].Sample(r, 10, spk, ch)
		l := fe.Decode(r, u)
		best, _ := l.BestPath()
		ref := make([]int, 0, len(u.Segments))
		for _, seg := range u.Segments {
			ref = append(ref, fe.Set.Map(seg.Phone))
		}
		c := align.Align(ref, best)
		agg.Hits += c.Hits
		agg.Subs += c.Subs
		agg.Ins += c.Ins
		agg.Dels += c.Dels
	}
	return agg.Accuracy()
}

func TestChannelMismatchDegradesDecoding(t *testing.T) {
	fe := New("EN-DNN", DNNHMM, 47, 6)
	clean := decodeAccuracy(fe, synthlang.ChannelCTSClean, 10)
	voa := decodeAccuracy(fe, synthlang.ChannelVOA, 10)
	if voa >= clean {
		t.Fatalf("VOA accuracy %v not worse than clean %v", voa, clean)
	}
	if clean < 0.5 {
		t.Fatalf("clean accuracy %v implausibly low", clean)
	}
}

func TestModelFamilyQualityOrdering(t *testing.T) {
	dnn := New("X-DNN", DNNHMM, 47, 7)
	gmmFE := New("X-GMM", GMMHMM, 47, 7)
	accDNN := decodeAccuracy(dnn, synthlang.ChannelCTSClean, 11)
	accGMM := decodeAccuracy(gmmFE, synthlang.ChannelCTSClean, 11)
	if accDNN <= accGMM {
		t.Fatalf("DNN accuracy %v not better than GMM %v", accDNN, accGMM)
	}
}

func TestFrontEndsMakeDifferentErrors(t *testing.T) {
	// Two front-ends with the same inventory size but different seeds
	// should produce different lattices on the same utterance.
	langs := testLangs()
	a := New("A", ANNHMM, 47, 100)
	b := New("B", ANNHMM, 47, 200)
	r1, r2 := rng.New(3), rng.New(3)
	spk := synthlang.NewSpeaker(rng.New(4), 0)
	u := langs[0].Sample(rng.New(5), 10, spk, synthlang.ChannelCTSClean)
	la := a.Decode(r1, u)
	lb := b.Decode(r2, u)
	pa, _ := la.BestPath()
	pb, _ := lb.BestPath()
	same := 0
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		if pa[i] == pb[i] {
			same++
		}
	}
	if n > 0 && same == n {
		t.Fatal("independent front-ends decoded identically")
	}
}

func TestSupervector(t *testing.T) {
	langs := testLangs()
	fe := New("MA", GMMHMM, 64, 8)
	r := rng.New(6)
	spk := synthlang.NewSpeaker(r, 0)
	u := langs[0].Sample(r, 10, spk, synthlang.ChannelCTSClean)
	v := fe.Supervector(r, u)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() == 0 {
		t.Fatal("empty supervector")
	}
	// Unigram + bigram blocks each sum to ~1.
	var total float64
	for _, val := range v.Val {
		total += val
	}
	if math.Abs(total-2) > 1e-6 {
		t.Fatalf("supervector mass = %v, want 2 (two order blocks)", total)
	}
}

func TestDecodeUltraShortUtterance(t *testing.T) {
	fe := New("HU", ANNHMM, 59, 9)
	u := &synthlang.Utterance{
		Language: 0,
		Segments: []synthlang.Segment{{Phone: 1, DurMs: 50}},
		Speaker:  synthlang.SpeakerProfile{Rate: 1, PitchHz: 120},
		Channel:  synthlang.ChannelCTSClean,
	}
	// Even with deletion, a lattice must come back.
	for trial := 0; trial < 50; trial++ {
		l := fe.Decode(rng.New(uint64(trial)), u)
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSupervectorsSeparateLanguages(t *testing.T) {
	// Average supervectors of two languages should be farther apart than
	// two halves of the same language — the signal VSM classification
	// rests on.
	langs := testLangs()
	fe := New("HU", ANNHMM, 59, 10)
	root := rng.New(11)
	mean := func(lang *synthlang.Language, n int, label string) []float64 {
		out := make([]float64, fe.Space.Dim())
		for i := 0; i < n; i++ {
			r := root.SplitString(label).Split(uint64(i))
			spk := synthlang.NewSpeaker(r, i)
			u := lang.Sample(r, 30, spk, synthlang.ChannelCTSClean)
			v := fe.Supervector(r, u)
			v.AxpyDense(1/float64(n), out)
		}
		return out
	}
	a1 := mean(langs[0], 8, "a1")
	a2 := mean(langs[0], 8, "a2")
	b := mean(langs[9], 8, "b")
	dist := func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	within := dist(a1, a2)
	between := dist(a1, b)
	if between <= within {
		t.Fatalf("between-language distance %v not larger than within %v", between, within)
	}
}

func TestPhoneSetsMatchPaperInventories(t *testing.T) {
	// Paper: CZ 43, HU 59, RU 50 (BUT); EN 47 (incl. noise/sp/sil); MA 64.
	if phones.UniversalSize != 64 {
		t.Fatal("universal size drifted")
	}
}

// Package frontend implements the paper's six parallel phone recognizers:
//
//	ANN-HMM  Hungarian (59 phones), Russian (50), Czech (43)   [BUT TRAPs]
//	DNN-HMM  English (47)                                      [Tsinghua]
//	GMM-HMM  English (47), Mandarin (64)                       [Tsinghua]
//
// Each front-end decodes an utterance into a phone lattice over its own
// inventory. Two decoder implementations share this contract:
//
//   - The simulated decoder used by the large experiment sweeps: it maps
//     the utterance's universal phones onto the front-end inventory and
//     applies a model-family- and channel-dependent error process
//     (substitutions biased toward in-class confusions, insertions,
//     deletions), emitting a confusion-network lattice with posteriors.
//     Channel-dependent degradation is the train/test mismatch that DBA
//     exploits: VOA broadcast test audio decodes worse than the CTS data
//     the recognizers were "trained" on, exactly as in LRE09.
//
//   - The acoustic decoder (acoustic.go) runs the full path — waveform
//     synthesis, MFCC/PLP extraction, GMM-HMM or MLP-HMM decoding,
//     confusion generation — and is used by integration tests, the
//     acousticpath example, and the Table 5 real-time-factor benches.
package frontend

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/lattice"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/phones"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/synthlang"
)

// Decode-work counters shared by the simulated and acoustic decoders:
// utterances decoded and lattice arcs emitted (the size of the decoding
// output that the supervector stage consumes).
var (
	obsDecodedUtts = obs.GetCounter("decode.utterances")
	obsLatticeArcs = obs.GetCounter("decode.lattice_arcs")
)

// Kind is the acoustic model family of a front-end.
type Kind int

// Acoustic model families, ordered roughly by recognition quality in the
// paper's era: GMM < ANN < DNN.
const (
	GMMHMM Kind = iota
	ANNHMM
	DNNHMM
)

func (k Kind) String() string {
	switch k {
	case GMMHMM:
		return "GMM-HMM"
	case ANNHMM:
		return "ANN-HMM"
	case DNNHMM:
		return "DNN-HMM"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// FrontEnd is one simulated phone recognizer.
type FrontEnd struct {
	Name string
	Kind Kind
	Set  *phones.Set
	// Space indexes this front-end's N-gram supervectors.
	Space *ngram.Space

	// BaseAccuracy is the top-1 phone accuracy on matched (CTS-clean)
	// audio.
	BaseAccuracy float64
	// ChannelPenalty[ch] is subtracted from the accuracy for utterances
	// recorded in that condition.
	ChannelPenalty map[synthlang.Channel]float64
	// InsertionRate and DeletionRate are per-segment probabilities.
	InsertionRate, DeletionRate float64
	// TopK is the lattice depth (alternatives per slot).
	TopK int

	// confusion[ch][p] lists in-class confusion candidates for front-end
	// phone p with seeded weights. The weights depend on the recording
	// condition: a broadcast channel does not merely decode worse, it
	// confuses *differently* (different spectral tilt shifts which phones
	// collide), which is what makes train/test mismatch a distribution
	// shift rather than plain noise — the effect DBA adapts to.
	confusion [synthlang.NumChannels][][]confusand
	seed      uint64
}

type confusand struct {
	phone  int
	weight float64
}

// NgramOrder is the supervector order used throughout the reproduction
// (unigram + bigram; the paper's systems typically use up to trigram, but
// bigram keeps the 23-language sweeps tractable while preserving every
// qualitative result — see DESIGN.md).
const NgramOrder = 2

// New builds a simulated front-end. The seed individualizes its phone-set
// partition and confusion structure: two front-ends with different seeds
// make different errors, which is the complementarity the paper's parallel
// architecture (and DBA's voting) relies on.
func New(name string, kind Kind, inventorySize int, seed uint64) *FrontEnd {
	return NewWithOrder(name, kind, inventorySize, seed, NgramOrder)
}

// NewWithOrder is New with an explicit supervector N-gram order (the
// paper's systems go up to trigram; the trigram-vs-bigram ablation bench
// uses this).
func NewWithOrder(name string, kind Kind, inventorySize int, seed uint64, order int) *FrontEnd {
	set := phones.NewSet(name, inventorySize, seed)
	f := &FrontEnd{
		Name:  name,
		Kind:  kind,
		Set:   set,
		Space: ngram.NewSpace(set.Size, order),
		ChannelPenalty: map[synthlang.Channel]float64{
			synthlang.ChannelCTSClean: 0,
			synthlang.ChannelCTSNoisy: 0.04,
			synthlang.ChannelVOA:      0.13,
		},
		InsertionRate: 0.02,
		DeletionRate:  0.03,
		TopK:          4,
		seed:          seed,
	}
	switch kind {
	case DNNHMM:
		f.BaseAccuracy = 0.86
	case ANNHMM:
		f.BaseAccuracy = 0.81
	case GMMHMM:
		f.BaseAccuracy = 0.77
	}
	f.buildConfusion()
	return f
}

// StandardSix returns the paper's front-end battery.
func StandardSix(seed uint64) []*FrontEnd {
	return []*FrontEnd{
		New("HU", ANNHMM, 59, seed+101),
		New("RU", ANNHMM, 50, seed+202),
		New("CZ", ANNHMM, 43, seed+303),
		New("EN-DNN", DNNHMM, 47, seed+404),
		New("MA", GMMHMM, 64, seed+505),
		New("EN-GMM", GMMHMM, 47, seed+606),
	}
}

// channelConfusionBlend is how far each channel's confusion weights drift
// from the clean-channel structure (0 = identical, 1 = independent).
var channelConfusionBlend = [synthlang.NumChannels]float64{
	synthlang.ChannelCTSClean: 0,
	synthlang.ChannelCTSNoisy: 0.25,
	synthlang.ChannelVOA:      0.8,
}

// buildConfusion derives per-channel, per-phone confusion candidates:
// same-class phones with weights drawn from seeded Dirichlets, so each
// front-end confuses differently, and each recording condition perturbs
// the confusion structure away from the clean one.
func (f *FrontEnd) buildConfusion() {
	n := f.Set.Size
	candsFor := func(p int) []int {
		var cands []int
		for q := 0; q < n; q++ {
			if q != p && f.Set.ClassOf[q] == f.Set.ClassOf[p] {
				cands = append(cands, q)
			}
		}
		if len(cands) == 0 {
			for q := 0; q < n; q++ {
				if q != p {
					cands = append(cands, q)
				}
			}
		}
		return cands
	}
	for ch := synthlang.Channel(0); ch < synthlang.NumChannels; ch++ {
		rBase := rng.New(f.seed ^ 0xc0f5)
		rCh := rng.New(f.seed ^ 0xc0f5 ^ (0x9e37 * uint64(ch+1)))
		blend := channelConfusionBlend[ch]
		f.confusion[ch] = make([][]confusand, n)
		for p := 0; p < n; p++ {
			cands := candsFor(p)
			base := make([]float64, len(cands))
			rBase.Dirichlet(0.8, base)
			chw := make([]float64, len(cands))
			rCh.Dirichlet(0.8, chw)
			list := make([]confusand, len(cands))
			for i, q := range cands {
				list[i] = confusand{
					phone:  q,
					weight: (1-blend)*base[i] + blend*chw[i],
				}
			}
			f.confusion[ch][p] = list
		}
	}
}

// accuracy returns the top-1 accuracy for a channel condition.
func (f *FrontEnd) accuracy(ch synthlang.Channel) float64 {
	a := f.BaseAccuracy - f.ChannelPenalty[ch]
	if a < 0.1 {
		a = 0.1
	}
	return a
}

// drawConfusion samples a confusion for front-end phone p under a
// recording condition.
func (f *FrontEnd) drawConfusion(r *rng.RNG, p int, ch synthlang.Channel) int {
	list := f.confusion[ch][p]
	w := make([]float64, len(list))
	for i, c := range list {
		w[i] = c.weight
	}
	return list[r.Categorical(w)].phone
}

// Decode runs the simulated recognizer on an utterance, producing a
// confusion-network phone lattice over the front-end's inventory. The
// caller provides the randomness stream; deriving it from (corpus seed,
// utterance id, front-end name) makes decoding deterministic and
// cacheable.
func (f *FrontEnd) Decode(r *rng.RNG, u *synthlang.Utterance) *lattice.Lattice {
	// Chaos hook: Decode has no error path, so injected faults surface as
	// panics or stalls here — the isolation layers in callers (worker
	// pools, the serve batcher) are what the chaos suite exercises.
	faultinject.Disturb("frontend.decode")
	l := lattice.FromSausage(f.decodeSlots(r, u))
	obsDecodedUtts.Inc()
	obsLatticeArcs.Add(int64(l.NumEdges()))
	return l
}

// DecodeChecked is Decode with an error path: the decoded confusion
// network goes through lattice.ParseSausage (the validating builder), so
// a corrupt decode — an injected fault at the frontend.decode or
// lattice.sausage site, or a genuinely malformed sausage — comes back as
// an error the offline pipeline can quarantine per-utterance instead of
// aborting the whole extraction phase. The randomness consumed is
// identical to Decode's, and a clean decode yields the identical lattice.
func (f *FrontEnd) DecodeChecked(r *rng.RNG, u *synthlang.Utterance) (*lattice.Lattice, error) {
	if err := faultinject.At("frontend.decode"); err != nil {
		return nil, err
	}
	l, err := lattice.ParseSausage(f.decodeSlots(r, u), f.Set.Size)
	if err != nil {
		return nil, err
	}
	obsDecodedUtts.Inc()
	obsLatticeArcs.Add(int64(l.NumEdges()))
	return l, nil
}

// decodeSlots runs the simulated error process and emits the confusion
// network slots; Decode and DecodeChecked share it so both consume the
// caller's randomness stream identically.
func (f *FrontEnd) decodeSlots(r *rng.RNG, u *synthlang.Utterance) []lattice.SausageSlot {
	acc := f.accuracy(u.Channel)
	var slots []lattice.SausageSlot
	emit := func(truePhone int) {
		correct := r.Bernoulli(acc)
		// Top-hypothesis posterior: decoders are better calibrated when
		// right than when wrong.
		var top float64
		if correct {
			top = clamp(r.NormMuSigma(0.78, 0.10), 0.40, 0.98)
		} else {
			top = clamp(r.NormMuSigma(0.55, 0.12), 0.30, 0.90)
		}
		topPhone := truePhone
		if !correct {
			topPhone = f.drawConfusion(r, truePhone, u.Channel)
		}
		slot := lattice.SausageSlot{{Phone: topPhone, Prob: top}}
		// Remaining mass over confusion alternatives (and, when the top is
		// wrong, the true phone competes among them).
		rest := 1 - top
		k := f.TopK - 1
		if k > 0 {
			w := make([]float64, k)
			r.Dirichlet(1.0, w)
			used := map[int]bool{topPhone: true}
			for i := 0; i < k; i++ {
				var alt int
				if !correct && i == 0 {
					alt = truePhone // true phone usually survives in the lattice
				} else {
					alt = f.drawConfusion(r, truePhone, u.Channel)
				}
				if used[alt] {
					continue
				}
				used[alt] = true
				slot = append(slot, struct {
					Phone int
					Prob  float64
				}{Phone: alt, Prob: rest * w[i]})
			}
		}
		slots = append(slots, slot)
	}

	for _, seg := range u.Segments {
		fePhone := f.Set.Map(seg.Phone)
		if r.Bernoulli(f.DeletionRate) {
			continue
		}
		emit(fePhone)
		if r.Bernoulli(f.InsertionRate) {
			// Spurious segment: a confusion of the current phone.
			emit(f.drawConfusion(r, fePhone, u.Channel))
		}
	}
	if len(slots) == 0 {
		// Degenerate ultra-short utterance: emit one slot so downstream
		// code always has a lattice.
		fePhone := f.Set.Map(u.Segments[0].Phone)
		slots = append(slots, lattice.SausageSlot{{Phone: fePhone, Prob: 1}})
	}
	return slots
}

// Supervector decodes and converts to the per-order-normalized phonotactic
// supervector in one step.
func (f *FrontEnd) Supervector(r *rng.RNG, u *synthlang.Utterance) *sparse.Vector {
	return f.Space.Supervector(f.Decode(r, u))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package frontend

import (
	"fmt"
	"math"

	"repro/internal/feats"
	"repro/internal/hmm"
	"repro/internal/lattice"
	"repro/internal/lm"
	"repro/internal/ngram"
	"repro/internal/nnet"
	"repro/internal/phones"
	"repro/internal/rng"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

// FeatureKind selects the acoustic feature pipeline, matching the paper's
// setups (PLP for the GMM-HMM and DNN-HMM front-ends, MFCC offered for
// the acoustic-diversification variant).
type FeatureKind int

// Feature pipelines.
const (
	PLPFeatures FeatureKind = iota
	MFCCFeatures
)

// AcousticFrontEnd is a phone recognizer that runs the full acoustic path:
// waveform → features → HMM decoding → confusion lattice. It implements
// the same Decode contract as the simulated FrontEnd.
type AcousticFrontEnd struct {
	Name     string
	Kind     Kind
	Set      *phones.Set
	Space    *ngram.Space
	Features FeatureKind

	extractor *feats.Extractor
	model     *hmm.Model
	synth     *synthspeech.Synthesizer
	// TopK alternatives per decoded segment in the output lattice.
	TopK int
	// AcousticScale flattens segment posteriors (standard lattice
	// posterior scaling; ~0.1 gives useful confusion networks).
	AcousticScale float64
}

// AcousticTrainConfig controls acoustic model training.
type AcousticTrainConfig struct {
	Name          string
	Kind          Kind
	InventorySize int
	Features      FeatureKind
	Seed          uint64
	// TrainUtterances is the number of synthetic training utterances;
	// each contributes a few hundred labeled frames.
	TrainUtterances int
	// UtteranceDurS is the duration of each training utterance.
	UtteranceDurS float64
	// GaussiansPerState for GMM-HMM (paper: 32; tests use fewer).
	GaussiansPerState int
	// HiddenLayers for hybrid models: e.g. {64} for the shallow ANN,
	// {128, 128, 128} for the DNN.
	HiddenLayers []int
	// TrainEpochs for the MLP fine-tuning.
	TrainEpochs int
	// RealignIters applies Viterbi-realignment training after the flat
	// start (GMM-HMM only; the paper's ML-then-realign recipe). 0 keeps
	// the flat-start segmentation.
	RealignIters int
	// UsePhoneLM trains a Kneser-Ney phone bigram on the training
	// transcriptions and applies it during decoding (the paper's decoder
	// consumes an HTK phone-level language model; SRILM estimates it).
	UsePhoneLM bool
	// LMWeight is the grammar scale factor applied to the phone LM.
	LMWeight float64
}

// DefaultAcousticConfig returns a small but faithful configuration.
func DefaultAcousticConfig(name string, kind Kind, inventorySize int, seed uint64) AcousticTrainConfig {
	cfg := AcousticTrainConfig{
		Name:              name,
		Kind:              kind,
		InventorySize:     inventorySize,
		Seed:              seed,
		TrainUtterances:   24,
		UtteranceDurS:     4,
		GaussiansPerState: 4,
		TrainEpochs:       8,
		UsePhoneLM:        true,
		LMWeight:          1.0,
	}
	switch kind {
	case DNNHMM:
		cfg.Features = PLPFeatures
		cfg.HiddenLayers = []int{64, 64, 64}
	case ANNHMM:
		cfg.Features = MFCCFeatures
		cfg.HiddenLayers = []int{64}
	case GMMHMM:
		cfg.Features = PLPFeatures
	}
	return cfg
}

// TrainAcoustic builds and trains an acoustic front-end on synthetic
// speech drawn from the given languages. The training audio is rendered in
// the CTS-clean condition, mirroring the paper's recognizers (trained on
// Switchboard/telephone corpora) meeting mismatched test audio.
func TrainAcoustic(cfg AcousticTrainConfig, langs []*synthlang.Language) (*AcousticFrontEnd, error) {
	if len(langs) == 0 {
		return nil, fmt.Errorf("frontend: no languages to train on")
	}
	root := rng.New(cfg.Seed)
	set := phones.NewSet(cfg.Name, cfg.InventorySize, cfg.Seed)
	ext := feats.NewExtractor(feats.DefaultConfig())
	synth := synthspeech.New()

	a := &AcousticFrontEnd{
		Name:          cfg.Name,
		Kind:          cfg.Kind,
		Set:           set,
		Space:         ngram.NewSpace(set.Size, NgramOrder),
		Features:      cfg.Features,
		extractor:     ext,
		synth:         synth,
		TopK:          4,
		AcousticScale: 0.15,
	}

	// Generate labeled training data.
	var utterFrames [][][]float64
	var utterSegs [][]hmm.Segment
	var allFrames [][]float64
	var allLabels []int
	for i := 0; i < cfg.TrainUtterances; i++ {
		r := root.Split(uint64(i) + 1)
		lang := langs[i%len(langs)]
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, cfg.UtteranceDurS, spk, synthlang.ChannelCTSClean)
		wav := synth.Render(r, u)
		frames := a.extract(wav)
		labels := synthspeech.FrameLabels(u, 10, 25)
		n := len(frames)
		if len(labels) < n {
			n = len(labels)
		}
		if n == 0 {
			continue
		}
		frames = frames[:n]
		// Convert frame labels (universal) to front-end phone segments.
		segs := labelsToSegments(labels[:n], set)
		utterFrames = append(utterFrames, frames)
		utterSegs = append(utterSegs, segs)
		for t := 0; t < n; t++ {
			allFrames = append(allFrames, frames[t])
			allLabels = append(allLabels, set.Map(labels[t]))
		}
	}
	if len(allFrames) == 0 {
		return nil, fmt.Errorf("frontend: no training frames produced")
	}

	var emit hmm.EmissionScorer
	switch cfg.Kind {
	case GMMHMM:
		if cfg.RealignIters > 0 {
			utterPhones := make([][]int, len(utterSegs))
			for i, segs := range utterSegs {
				seq := make([]int, len(segs))
				for j, sg := range segs {
					seq[j] = sg.Phone
				}
				utterPhones[i] = seq
			}
			refined, _ := hmm.Realign(root.SplitString("realign"), set.Size,
				utterFrames, utterPhones, utterSegs, cfg.GaussiansPerState, 6, cfg.RealignIters)
			emit = refined
		} else {
			emit = hmm.TrainGMMEmissions(root.SplitString("gmm"), set.Size,
				utterFrames, utterSegs, cfg.GaussiansPerState, 6)
		}
	default:
		// Hybrid: MLP frame classifier over front-end phones.
		dim := len(allFrames[0])
		sizes := append([]int{dim}, cfg.HiddenLayers...)
		sizes = append(sizes, set.Size)
		mlp := nnet.New(root.SplitString("mlp"), sizes...)
		tc := nnet.DefaultTrainConfig()
		tc.Epochs = cfg.TrainEpochs
		if cfg.Kind == DNNHMM {
			// The paper pre-trains its DNN before fine-tuning.
			mlp.Pretrain(root.SplitString("pretrain"), subsample(allFrames, 2000), 2, 0.01, 0.1)
		}
		mlp.Train(root.SplitString("sgd"), allFrames, allLabels, nil, nil, tc)
		// Log priors from label frequencies.
		priors := make([]float64, set.Size)
		for _, l := range allLabels {
			priors[l]++
		}
		logPriors := make([]float64, set.Size)
		for p := range logPriors {
			logPriors[p] = math.Log((priors[p] + 1) / (float64(len(allLabels)) + float64(set.Size)))
		}
		emit = &hmm.PosteriorEmissions{Classify: mlp.LogPredict, LogPriors: logPriors}
	}
	a.model = hmm.NewModel(set.Size, emit, 7)
	if cfg.UsePhoneLM {
		// Phone-sequence transcriptions in front-end phones.
		var seqs [][]int
		for _, segs := range utterSegs {
			seq := make([]int, len(segs))
			for i, sg := range segs {
				seq[i] = sg.Phone
			}
			seqs = append(seqs, seq)
		}
		phoneLM := lm.TrainKneserNey(set.Size, seqs, 0.75)
		w := cfg.LMWeight
		if w <= 0 {
			w = 1
		}
		trans := make([][]float64, set.Size)
		for aPh := 0; aPh < set.Size; aPh++ {
			row := make([]float64, set.Size)
			for bPh := 0; bPh < set.Size; bPh++ {
				row[bPh] = w * phoneLM.LogProb(aPh, bPh)
			}
			trans[aPh] = row
		}
		a.model.LogPhoneTrans = trans
	}
	return a, nil
}

// extract runs the configured feature pipeline.
func (a *AcousticFrontEnd) extract(wav []float64) [][]float64 {
	switch a.Features {
	case MFCCFeatures:
		return a.extractor.MFCCWithDeltasCMVN(wav)
	default:
		return a.extractor.PLPWithDeltasCMVN(wav)
	}
}

// labelsToSegments compresses per-frame universal labels into front-end
// phone segments.
func labelsToSegments(labels []int, set *phones.Set) []hmm.Segment {
	var segs []hmm.Segment
	start := 0
	for t := 1; t <= len(labels); t++ {
		if t == len(labels) || set.Map(labels[t]) != set.Map(labels[start]) {
			segs = append(segs, hmm.Segment{
				Phone: set.Map(labels[start]),
				Start: start,
				End:   t,
			})
			start = t
		}
	}
	return segs
}

func subsample(frames [][]float64, maxN int) [][]float64 {
	if len(frames) <= maxN {
		return frames
	}
	stride := len(frames) / maxN
	out := make([][]float64, 0, maxN)
	for i := 0; i < len(frames) && len(out) < maxN; i += stride {
		out = append(out, frames[i])
	}
	return out
}

// DecodeAudio decodes raw samples into a confusion-network lattice.
func (a *AcousticFrontEnd) DecodeAudio(wav []float64) *lattice.Lattice {
	frames := a.extract(wav)
	return a.DecodeFrames(frames)
}

// DecodeFrames decodes pre-extracted feature frames.
func (a *AcousticFrontEnd) DecodeFrames(frames [][]float64) *lattice.Lattice {
	segs := a.model.Decode(frames)
	obsDecodedUtts.Inc()
	if len(segs) == 0 {
		// Guarantee a non-empty lattice for degenerate inputs.
		return lattice.FromString([]int{0})
	}
	alts := a.model.SegmentAlternatives(frames, segs, a.TopK, a.AcousticScale)
	slots := make([]lattice.SausageSlot, len(segs))
	for i, segAlts := range alts {
		slot := make(lattice.SausageSlot, 0, len(segAlts))
		for _, alt := range segAlts {
			if alt.Posterior <= 0 {
				continue
			}
			slot = append(slot, struct {
				Phone int
				Prob  float64
			}{Phone: alt.Phone, Prob: alt.Posterior})
		}
		slots[i] = slot
	}
	l := lattice.FromSausage(slots)
	obsLatticeArcs.Add(int64(l.NumEdges()))
	return l
}

// Decode renders the utterance to audio and decodes it — the full
// acoustic path, same contract as the simulated FrontEnd.Decode.
func (a *AcousticFrontEnd) Decode(r *rng.RNG, u *synthlang.Utterance) *lattice.Lattice {
	wav := a.synth.Render(r, u)
	return a.DecodeAudio(wav)
}

// PhoneAccuracy measures frame-weighted phone accuracy of decoding against
// the reference segmentation, a diagnostic used by tests and EXPERIMENTS.md.
func (a *AcousticFrontEnd) PhoneAccuracy(r *rng.RNG, u *synthlang.Utterance) float64 {
	wav := a.synth.Render(r, u)
	frames := a.extract(wav)
	labels := synthspeech.FrameLabels(u, 10, 25)
	n := len(frames)
	if len(labels) < n {
		n = len(labels)
	}
	if n == 0 {
		return 0
	}
	segs := a.model.Decode(frames[:n])
	correct := 0
	for _, seg := range segs {
		for t := seg.Start; t < seg.End && t < n; t++ {
			if a.Set.Map(labels[t]) == seg.Phone {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

package frontend

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/synthlang"
)

// tinyAcousticConfig keeps the full acoustic path fast enough for go test.
func tinyAcousticConfig(kind Kind, seed uint64) AcousticTrainConfig {
	cfg := DefaultAcousticConfig("tiny", kind, 12, seed)
	cfg.TrainUtterances = 10
	cfg.UtteranceDurS = 3
	cfg.GaussiansPerState = 2
	cfg.TrainEpochs = 4
	if kind != GMMHMM {
		cfg.HiddenLayers = []int{24}
	}
	return cfg
}

func TestTrainAcousticGMMHMM(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic path is slow")
	}
	langs := testLangs()[:3]
	fe, err := TrainAcoustic(tinyAcousticConfig(GMMHMM, 21), langs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	spk := synthlang.SpeakerProfile{Rate: 1, SubstitutionProb: 0, PitchHz: 140}
	u := langs[0].Sample(r, 3, spk, synthlang.ChannelCTSClean)
	l := fe.Decode(r, u)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Phone accuracy must beat chance (1/12) by a solid margin.
	acc := fe.PhoneAccuracy(rng.New(2), u)
	if acc < 0.2 {
		t.Fatalf("GMM-HMM acoustic path accuracy %v barely above chance", acc)
	}
	// Supervector flows through the same downstream code as the simulated
	// path.
	v := fe.Space.Supervector(l)
	if v.NNZ() == 0 {
		t.Fatal("acoustic supervector empty")
	}
}

func TestTrainAcousticHybridMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic path is slow")
	}
	langs := testLangs()[:2]
	fe, err := TrainAcoustic(tinyAcousticConfig(ANNHMM, 22), langs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	spk := synthlang.SpeakerProfile{Rate: 1, SubstitutionProb: 0, PitchHz: 160}
	u := langs[0].Sample(r, 3, spk, synthlang.ChannelCTSClean)
	acc := fe.PhoneAccuracy(rng.New(4), u)
	if acc < 0.15 {
		t.Fatalf("hybrid acoustic path accuracy %v barely above chance", acc)
	}
}

func TestTrainAcousticErrors(t *testing.T) {
	if _, err := TrainAcoustic(tinyAcousticConfig(GMMHMM, 1), nil); err == nil {
		t.Fatal("TrainAcoustic accepted empty language list")
	}
}

func TestPhoneLMImprovesDecoding(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic path is slow")
	}
	langs := testLangs()[:3]
	mkCfg := func(useLM bool) AcousticTrainConfig {
		cfg := tinyAcousticConfig(GMMHMM, 33)
		cfg.UsePhoneLM = useLM
		cfg.LMWeight = 1.0
		return cfg
	}
	withLM, err := TrainAcoustic(mkCfg(true), langs)
	if err != nil {
		t.Fatal(err)
	}
	withoutLM, err := TrainAcoustic(mkCfg(false), langs)
	if err != nil {
		t.Fatal(err)
	}
	var accLM, accNoLM float64
	const trials = 4
	for i := 0; i < trials; i++ {
		r := rng.New(uint64(100 + i))
		spk := synthlang.SpeakerProfile{Rate: 1, SubstitutionProb: 0, PitchHz: 150}
		u := langs[i%len(langs)].Sample(r, 4, spk, synthlang.ChannelCTSClean)
		accLM += withLM.PhoneAccuracy(rng.New(uint64(200+i)), u) / trials
		accNoLM += withoutLM.PhoneAccuracy(rng.New(uint64(200+i)), u) / trials
	}
	t.Logf("phone accuracy with LM %.3f, without %.3f", accLM, accNoLM)
	// A matched-domain phone LM must not hurt decoding materially.
	if accLM < accNoLM-0.05 {
		t.Fatalf("phone LM degraded accuracy: %.3f vs %.3f", accLM, accNoLM)
	}
}

func TestRealignmentOptionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic path is slow")
	}
	langs := testLangs()[:2]
	cfg := tinyAcousticConfig(GMMHMM, 44)
	cfg.RealignIters = 2
	fe, err := TrainAcoustic(cfg, langs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	spk := synthlang.SpeakerProfile{Rate: 1, SubstitutionProb: 0, PitchHz: 140}
	u := langs[0].Sample(r, 3, spk, synthlang.ChannelCTSClean)
	if acc := fe.PhoneAccuracy(rng.New(10), u); acc < 0.2 {
		t.Fatalf("realigned model accuracy %v", acc)
	}
}

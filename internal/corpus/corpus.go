// Package corpus assembles the synthetic evaluation corpora that stand in
// for the paper's data: a training pool (the paper uses 180,000
// conversations from CallHome/CallFriend/OGI/OHSU/VOA), a development pool
// (22,701 conversations from LRE'03/'05/'07 + VOA), and an LRE09-style
// test pool with 30 s, 10 s and 3 s nominal-duration cuts across the
// 23-language closed set.
//
// The crucial property reproduced here is the *train/test channel
// mismatch*: training conversations are predominantly clean conversational
// telephone speech, while the LRE09 test mixes telephone with VOA
// broadcast audio. DBA's gains come from adapting to that shift, so the
// channel pools are configured per split. Speaker pools are disjoint
// between splits.
package corpus

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/synthlang"
)

// Item is one corpus utterance with its ground-truth label.
type Item struct {
	ID    int
	Label int // language index
	U     *synthlang.Utterance
}

// Split is a labeled collection of utterances.
type Split struct {
	Name  string
	Items []*Item
}

// Durations are the LRE09 nominal test durations in seconds.
var Durations = []float64{30, 10, 3}

// Corpus is the full experimental data: train, dev, and per-duration test
// splits. Dev mirrors the test condition (all three durations, same
// channel mix — the paper's development data is drawn from earlier LRE
// evaluations plus VOA), because score calibration and fusion backends
// must be trained at the operating condition they will be applied to.
type Corpus struct {
	Langs []*synthlang.Language
	Train *Split
	// Dev is indexed by duration (30, 10, 3), like Test.
	Dev map[float64]*Split
	// Test is indexed by duration (30, 10, 3).
	Test map[float64]*Split
}

// ChannelMix is a categorical distribution over recording conditions.
type ChannelMix struct {
	Weights [synthlang.NumChannels]float64
}

// Draw samples a channel.
func (c ChannelMix) Draw(r *rng.RNG) synthlang.Channel {
	return synthlang.Channel(r.Categorical(c.Weights[:]))
}

// Config sizes the corpus. Counts are per language.
type Config struct {
	Seed         uint64
	TrainPerLang int
	DevPerLang   int
	// TestPerLang is per duration tier.
	TestPerLang int
	// TrainDurS is the nominal duration of training/dev conversations.
	TrainDurS float64
	// TrainChannels reflects the CTS-dominated training corpora;
	// TestChannels the LRE09 CTS+VOA mix; DevChannels the development
	// pool's mix (earlier LREs plus VOA, close to the test condition).
	TrainChannels ChannelMix
	TestChannels  ChannelMix
	DevChannels   ChannelMix
	// SpeakersPerLang bounds the speaker pool per language per split.
	SpeakersPerLang int
	LangConfig      synthlang.Config
}

// DefaultConfig returns the medium-scale configuration used by the
// command-line experiment driver.
func DefaultConfig() Config {
	return Config{
		Seed:         42,
		TrainPerLang: 40,
		DevPerLang:   12,
		TestPerLang:  15,
		TrainDurS:    30,
		TrainChannels: ChannelMix{Weights: [synthlang.NumChannels]float64{
			0.70, 0.30, 0, // CTS clean, CTS noisy, no VOA in training
		}},
		TestChannels: ChannelMix{Weights: [synthlang.NumChannels]float64{
			0.25, 0.25, 0.50, // LRE09: half broadcast
		}},
		DevChannels: ChannelMix{Weights: [synthlang.NumChannels]float64{
			0.30, 0.30, 0.40, // earlier LREs + VOA: near the test mix
		}},
		SpeakersPerLang: 20,
		LangConfig:      synthlang.DefaultConfig(),
	}
}

// TinyConfig is the unit-test scale (seconds end-to-end).
func TinyConfig() Config {
	c := DefaultConfig()
	c.TrainPerLang = 8
	c.DevPerLang = 4
	c.TestPerLang = 4
	return c
}

// Build generates the corpus deterministically from cfg.Seed.
func Build(cfg Config) *Corpus {
	root := rng.New(cfg.Seed)
	langs := synthlang.Generate(cfg.LangConfig, cfg.Seed)
	c := &Corpus{
		Langs: langs,
		Test:  make(map[float64]*Split),
	}
	nextID := 0
	gen := func(splitName string, perLang int, dur float64, mix ChannelMix, speakerBase int) *Split {
		s := &Split{Name: splitName}
		for li, lang := range langs {
			lr := root.SplitString(splitName + ":" + lang.Name)
			for i := 0; i < perLang; i++ {
				ur := lr.Split(uint64(i))
				spkID := speakerBase + li*cfg.SpeakersPerLang + ur.Intn(cfg.SpeakersPerLang)
				spk := synthlang.NewSpeaker(lr.Split(uint64(1_000_000+spkID)), spkID)
				ch := mix.Draw(ur)
				u := lang.Sample(ur, dur, spk, ch)
				s.Items = append(s.Items, &Item{ID: nextID, Label: li, U: u})
				nextID++
			}
		}
		return s
	}
	c.Train = gen("train", cfg.TrainPerLang, cfg.TrainDurS, cfg.TrainChannels, 0)
	c.Dev = make(map[float64]*Split)
	for _, dur := range Durations {
		c.Dev[dur] = gen(fmt.Sprintf("dev-%gs", dur), cfg.DevPerLang, dur, cfg.DevChannels, 1_000_000)
		c.Test[dur] = gen(fmt.Sprintf("test-%gs", dur), cfg.TestPerLang, dur, cfg.TestChannels, 2_000_000)
	}
	return c
}

// Labels extracts the label vector of a split.
func (s *Split) Labels() []int {
	out := make([]int, len(s.Items))
	for i, it := range s.Items {
		out[i] = it.Label
	}
	return out
}

// Len returns the number of items.
func (s *Split) Len() int { return len(s.Items) }

// AllTest returns the concatenation of all duration tiers in a stable
// order (30 s, 10 s, 3 s) — the pooled test set DBA votes over.
func (c *Corpus) AllTest() *Split {
	s := &Split{Name: "test-all"}
	for _, dur := range Durations {
		s.Items = append(s.Items, c.Test[dur].Items...)
	}
	return s
}

// AllDev returns the pooled development set in the same duration order.
func (c *Corpus) AllDev() *Split {
	s := &Split{Name: "dev-all"}
	for _, dur := range Durations {
		s.Items = append(s.Items, c.Dev[dur].Items...)
	}
	return s
}

// ChannelCounts tallies recording conditions in a split (diagnostics).
func (s *Split) ChannelCounts() map[synthlang.Channel]int {
	out := make(map[synthlang.Channel]int)
	for _, it := range s.Items {
		out[it.U.Channel]++
	}
	return out
}

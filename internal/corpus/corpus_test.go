package corpus

import (
	"testing"

	"repro/internal/synthlang"
)

func TestBuildSizes(t *testing.T) {
	cfg := TinyConfig()
	c := Build(cfg)
	k := synthlang.NumLanguages
	if c.Train.Len() != cfg.TrainPerLang*k {
		t.Fatalf("train size %d", c.Train.Len())
	}
	for _, dur := range Durations {
		if c.Dev[dur].Len() != cfg.DevPerLang*k {
			t.Fatalf("dev[%g] size %d", dur, c.Dev[dur].Len())
		}
	}
	if got := c.AllDev().Len(); got != 3*cfg.DevPerLang*k {
		t.Fatalf("pooled dev size %d", got)
	}
	for _, dur := range Durations {
		if c.Test[dur].Len() != cfg.TestPerLang*k {
			t.Fatalf("test[%g] size %d", dur, c.Test[dur].Len())
		}
	}
	if got := c.AllTest().Len(); got != 3*cfg.TestPerLang*k {
		t.Fatalf("pooled test size %d", got)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(TinyConfig())
	b := Build(TinyConfig())
	for i := range a.Train.Items {
		ua, ub := a.Train.Items[i].U, b.Train.Items[i].U
		if len(ua.Segments) != len(ub.Segments) {
			t.Fatal("corpus not deterministic")
		}
		for s := range ua.Segments {
			if ua.Segments[s] != ub.Segments[s] {
				t.Fatal("corpus segments not deterministic")
			}
		}
	}
}

func TestLabelsBalanced(t *testing.T) {
	c := Build(TinyConfig())
	counts := make(map[int]int)
	for _, l := range c.Train.Labels() {
		counts[l]++
	}
	if len(counts) != synthlang.NumLanguages {
		t.Fatalf("labels cover %d languages", len(counts))
	}
	for l, n := range counts {
		if n != TinyConfig().TrainPerLang {
			t.Fatalf("language %d has %d train items", l, n)
		}
	}
}

func TestChannelMismatch(t *testing.T) {
	c := Build(TinyConfig())
	trainCh := c.Train.ChannelCounts()
	testCh := c.AllTest().ChannelCounts()
	if trainCh[synthlang.ChannelVOA] != 0 {
		t.Fatalf("training contains %d VOA items", trainCh[synthlang.ChannelVOA])
	}
	if testCh[synthlang.ChannelVOA] == 0 {
		t.Fatal("test contains no VOA items — no mismatch to adapt to")
	}
	frac := float64(testCh[synthlang.ChannelVOA]) / float64(c.AllTest().Len())
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("VOA fraction %v far from configured 0.5", frac)
	}
}

func TestDurationsTiersRealized(t *testing.T) {
	c := Build(TinyConfig())
	for _, dur := range Durations {
		for _, it := range c.Test[dur].Items {
			if it.U.NominalDurS != dur {
				t.Fatalf("item in %g tier has nominal %g", dur, it.U.NominalDurS)
			}
			if it.U.TotalDurMs() < dur*1000 {
				t.Fatalf("item shorter than nominal: %v < %v", it.U.TotalDurMs(), dur*1000)
			}
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	c := Build(TinyConfig())
	seen := map[int]bool{}
	check := func(s *Split) {
		for _, it := range s.Items {
			if seen[it.ID] {
				t.Fatalf("duplicate ID %d", it.ID)
			}
			seen[it.ID] = true
		}
	}
	check(c.Train)
	for _, dur := range Durations {
		check(c.Dev[dur])
		check(c.Test[dur])
	}
}

func TestSpeakerPoolsDisjoint(t *testing.T) {
	c := Build(TinyConfig())
	trainSpk := map[int]bool{}
	for _, it := range c.Train.Items {
		trainSpk[it.U.Speaker.ID] = true
	}
	for _, it := range c.AllTest().Items {
		if trainSpk[it.U.Speaker.ID] {
			t.Fatalf("speaker %d appears in train and test", it.U.Speaker.ID)
		}
	}
}

// Command detplot emits DET-curve data (Fig. 3) as tab-separated values
// ready for gnuplot/matplotlib: one block per (system, duration) with
// probit-scaled axes, plus the EER operating point of each curve.
//
// Usage:
//
//	detplot -scale small -seed 42 -V 3 > det.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detplot: ")
	var (
		scaleFlag = flag.String("scale", "small", "corpus scale: tiny|small|medium|full")
		seed      = flag.Uint64("seed", 42, "experiment seed")
		vFlag     = flag.Int("V", 3, "vote threshold")
	)
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("building pipeline (scale=%s)…", scale)
	p := experiments.BuildPipeline(scale, *seed)
	fig := experiments.RunFig3(p, *vFlag)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "# system\tduration_s\tpfa\tpmiss\tprobit_pfa\tprobit_pmiss")
	durs := make([]float64, 0, len(fig.Curves))
	for d := range fig.Curves {
		durs = append(durs, d)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(durs)))
	emit := func(system string, dur float64, pts []metrics.DETPoint) {
		for _, pt := range pts {
			if pt.Pfa <= 0 || pt.Pfa >= 1 || pt.Pmiss <= 0 || pt.Pmiss >= 1 {
				continue
			}
			fmt.Fprintf(w, "%s\t%g\t%.6f\t%.6f\t%.4f\t%.4f\n",
				system, dur, pt.Pfa, pt.Pmiss, metrics.Probit(pt.Pfa), metrics.Probit(pt.Pmiss))
		}
		fmt.Fprintln(w)
	}
	for _, dur := range durs {
		c := fig.Curves[dur]
		emit("baseline-fusion", dur, c.Baseline)
		emit("dba-fusion", dur, c.DBA)
	}
}

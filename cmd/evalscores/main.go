// Command evalscores scores an LRE-style score file (as produced by
// `lre -scores` or any external system) with this repository's metrics:
// pooled EER, minimum Cavg, and optional DET points, per (system,
// duration) block.
//
// Usage:
//
//	lre -scale small -table 1 -scores scores.tsv
//	evalscores scores.tsv
//	evalscores -det scores.tsv > det.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/metrics"
	"repro/internal/scorefile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalscores: ")
	det := flag.Bool("det", false, "emit DET points instead of summary metrics")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: evalscores [-det] <scores.tsv>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := scorefile.Read(f)
	if err != nil {
		log.Fatal(err)
	}

	// Language index from the names present in the file.
	nameIndex := make(map[string]int)
	for _, r := range records {
		if _, ok := nameIndex[r.Model]; !ok {
			nameIndex[r.Model] = len(nameIndex)
		}
	}

	// Group by (system, duration).
	type key struct {
		system string
		dur    float64
	}
	groups := make(map[key][]scorefile.Record)
	for _, r := range records {
		k := key{r.System, r.DurationS}
		groups[k] = append(groups[k], r)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].system != keys[j].system {
			return keys[i].system < keys[j].system
		}
		return keys[i].dur > keys[j].dur
	})

	if !*det {
		fmt.Printf("%-20s %8s %10s %10s %8s\n", "system", "dur(s)", "EER%", "minCavg%", "trials")
	}
	for _, k := range keys {
		trials, err := scorefile.ToPairTrials(groups[k], nameIndex)
		if err != nil {
			log.Fatal(err)
		}
		if len(trials) == 0 {
			continue
		}
		detTrials := metrics.PairTrialsToDetection(trials)
		if *det {
			fmt.Printf("# %s %gs\n", k.system, k.dur)
			for _, pt := range metrics.DET(detTrials) {
				if pt.Pfa <= 0 || pt.Pfa >= 1 || pt.Pmiss <= 0 || pt.Pmiss >= 1 {
					continue
				}
				fmt.Printf("%.6f\t%.6f\n", pt.Pfa, pt.Pmiss)
			}
			fmt.Println()
			continue
		}
		eer := metrics.EER(detTrials)
		cavg, _ := metrics.MinCavg(trials, len(nameIndex))
		fmt.Printf("%-20s %8g %10.2f %10.2f %8d\n", k.system, k.dur, eer*100, cavg*100, len(trials))
	}
}

package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleReport() *obs.Report {
	return &obs.Report{
		Meta: map[string]string{"model_version": "3", "front_ends": "FE0,FE1"},
		Counters: map[string]int64{
			"serve.http.errors":         2,
			"serve.score.degraded":      5,
			"serve.queue.rejected":      7,
			"serve.http.score.requests": 900,
		},
		Gauges: map[string]float64{
			"serve.queue.depth":   3,
			"serve.http.inflight": 12,
		},
		Windows: map[string]obs.WindowsData{
			"serve.http.score.seconds": {
				M1: obs.WindowStats{Count: 600, RatePerSec: 10, P50Sec: 0.0021, P95Sec: 0.0084, P99Sec: 0.0152, MeanSec: 0.003},
				M5: obs.WindowStats{Count: 2400, RatePerSec: 8, P99Sec: 0.0201},
			},
			"serve.http.batch.seconds": {
				M1: obs.WindowStats{Count: 60, RatePerSec: 1, P50Sec: 0.011},
			},
			"serve.http.errors":        {M1: obs.WindowStats{Count: 2, RatePerSec: 0.03}},
			"serve.score.degraded":     {M1: obs.WindowStats{Count: 5, RatePerSec: 0.08}},
			"serve.queue.wait_seconds": {M1: obs.WindowStats{Count: 600, P50Sec: 0.0002, P95Sec: 0.0009, P99Sec: 0.0015}},
			"serve.batch.size":         {M1: obs.WindowStats{Count: 80, MeanSec: 7.5}},
		},
	}
}

func TestRenderDashboard(t *testing.T) {
	out := render(sampleReport(), "http://127.0.0.1:8080")
	for _, want := range []string{
		"model v3",
		"front-ends FE0,FE1",
		"queue depth 3",
		"inflight 12",
		"score",  // endpoint row
		"batch",  // endpoint row
		"10.0",   // score req/s 1m
		"2.10ms", // score p50 1m
		"8.40ms", // p95
		"15.2ms", // p99 (adaptive precision)
		"20.1ms", // p99 5m
		"(total 2)",
		"(total 5)",
		"429 total 7",
		"batch size 1m mean 7.5 (n=80)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Endpoint rows are sorted for a stable layout.
	if strings.Index(out, "batch ") > strings.Index(out, "score ") {
		t.Errorf("endpoint rows not sorted:\n%s", out)
	}
}

func TestRenderEmptyReport(t *testing.T) {
	// A freshly started daemon (no traffic yet) must render, not panic.
	out := render(&obs.Report{}, "http://x")
	if !strings.Contains(out, "lrestat — http://x") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "endpoint") {
		t.Errorf("table header missing:\n%s", out)
	}
}

func TestEndpointRows(t *testing.T) {
	rows := endpointRows(map[string]obs.WindowsData{
		"serve.http.score.seconds":   {},
		"serve.http.batch.seconds":   {},
		"serve.queue.wait_seconds":   {}, // not an endpoint latency metric
		"serve.http..seconds":        {}, // degenerate: empty name skipped
		"cluster.http.score.seconds": {}, // coordinator tier: own labelled row
		"cluster.rpc.w0:91.seconds":  {}, // per-peer RPC latency, not an endpoint
	})
	var labels []string
	for _, r := range rows {
		labels = append(labels, r.label)
	}
	want := []string{"batch", "c/score", "score"}
	if len(labels) != len(want) {
		t.Fatalf("endpointRows = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("endpointRows = %v, want %v", labels, want)
		}
	}
	if rows[1].key != "cluster.http.score.seconds" {
		t.Fatalf("c/score reads %q", rows[1].key)
	}
}

// coordinatorReport is a coordinator /metricsz snapshot: two workers,
// one healthy and one dead behind an open breaker.
func coordinatorReport() *obs.Report {
	return &obs.Report{
		Meta: map[string]string{
			"role":               "coordinator",
			"cluster_generation": "4",
			"model_version":      "4",
			"shard.w0.test:9101": "FE0,FE2",
			"shard.w1.test:9102": "FE1",
		},
		Counters: map[string]int64{
			"cluster.http.errors":                1,
			"cluster.score.degraded":             9,
			"cluster.peer.w0.test:9101.failures": 0,
			"cluster.peer.w1.test:9102.failures": 12,
		},
		Gauges: map[string]float64{
			"cluster.peer.w0.test:9101.up":           1,
			"cluster.peer.w0.test:9101.breaker_open": 0,
			"cluster.peer.w1.test:9102.up":           0,
			"cluster.peer.w1.test:9102.breaker_open": 1,
		},
		Windows: map[string]obs.WindowsData{
			"cluster.http.score.seconds": {
				M1: obs.WindowStats{Count: 540, RatePerSec: 9, P50Sec: 0.004, P95Sec: 0.012, P99Sec: 0.019, MeanSec: 0.005},
			},
			"cluster.rpc.w0.test:9101.seconds": {
				M1: obs.WindowStats{Count: 540, RatePerSec: 9, P95Sec: 0.0031, P99Sec: 0.0054},
			},
			"cluster.http.errors":    {M1: obs.WindowStats{Count: 1, RatePerSec: 0.02}},
			"cluster.score.degraded": {M1: obs.WindowStats{Count: 9, RatePerSec: 0.15}},
		},
	}
}

// TestRenderShardsPanel pins the coordinator dashboard: per-worker
// up/breaker/failure state and shard-RPC latency from the cluster.peer
// and cluster.rpc metric namespaces, pure render, no live fleet.
func TestRenderShardsPanel(t *testing.T) {
	out := render(coordinatorReport(), "http://coord:8080")
	for _, want := range []string{
		"shards — generation 4 (2 workers)",
		"w0.test:9101",
		"w1.test:9102",
		"c/score", // coordinator RED row, labelled apart from worker rows
		"FE0,FE2", // shard assignment from /metricsz meta
		"FE1",
		"3.10ms", // w0 rpc p95 1m
		"5.40ms", // w0 rpc p99 1m
		"coordinator 5xx/s 1m",
		"(total 9)", // cluster.score.degraded cumulative
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shards panel missing %q:\n%s", want, out)
		}
	}
	// Health columns: w0 up with a closed breaker, w1 down with an open
	// one and its failure count.
	for _, row := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(row, "w0.test:9101"):
			if !strings.Contains(row, " up ") || !strings.Contains(row, "closed") {
				t.Errorf("w0 row %q, want up/closed", row)
			}
		case strings.HasPrefix(row, "w1.test:9102"):
			if !strings.Contains(row, "down") || !strings.Contains(row, "open") || !strings.Contains(row, "12") {
				t.Errorf("w1 row %q, want down/open/12 failures", row)
			}
		}
	}
}

// TestRenderStandaloneHasNoShardsPanel: a plain daemon's report renders
// exactly as before the cluster work — no shards section.
func TestRenderStandaloneHasNoShardsPanel(t *testing.T) {
	out := render(sampleReport(), "http://127.0.0.1:8080")
	if strings.Contains(out, "shards") || strings.Contains(out, "c/") {
		t.Errorf("standalone dashboard grew cluster sections:\n%s", out)
	}
}

// TestRenderCascadeRow pins the cascade dashboard line: exit fraction,
// windowed exit rate, tier-1 failures, and per-path latency — rendered
// only when the daemon actually runs -cascade, with a coordinator's
// cluster.cascade.* tier as its own c/cascade row.
func TestRenderCascadeRow(t *testing.T) {
	rep := sampleReport()
	rep.Counters["serve.cascade.exit"] = 300
	rep.Counters["serve.cascade.escalate"] = 100
	rep.Counters["serve.cascade.tier1.failed"] = 2
	rep.Windows["serve.cascade.exit"] = obs.WindowsData{M1: obs.WindowStats{Count: 30, RatePerSec: 4.5}}
	rep.Windows["serve.cascade.tier1.seconds"] = obs.WindowsData{M1: obs.WindowStats{P95Sec: 0.0012}}
	rep.Windows["serve.cascade.escalated.seconds"] = obs.WindowsData{M1: obs.WindowStats{P95Sec: 0.0083}}
	out := render(rep, "http://x")
	for _, want := range []string{
		"cascade exit 75.0% (300/400)",
		"exits/s 1m 4.50",
		"tier1 fails 2",
		"1.20ms", // tier-1 p95
		"8.30ms", // escalated p95
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cascade row missing %q:\n%s", want, out)
		}
	}

	crep := coordinatorReport()
	crep.Counters["cluster.cascade.exit"] = 40
	crep.Counters["cluster.cascade.escalate"] = 60
	cout := render(crep, "http://coord:8080")
	if !strings.Contains(cout, "c/cascade exit 40.0% (40/100)") {
		t.Errorf("coordinator cascade row missing:\n%s", cout)
	}
}

// TestRenderNoCascadeRowWithoutTraffic: a daemon not running -cascade
// (all cascade counters zero or absent) keeps the pre-cascade screen.
func TestRenderNoCascadeRowWithoutTraffic(t *testing.T) {
	if out := render(sampleReport(), "http://x"); strings.Contains(out, "cascade") {
		t.Errorf("cascade row on a cascade-less daemon:\n%s", out)
	}
}

// TestRenderModelPanel pins the model footprint line: precision, rank,
// bundle and packed-weight sizes from the serve.model.* gauges and
// /metricsz meta — shown only once a bundle has actually loaded.
func TestRenderModelPanel(t *testing.T) {
	rep := sampleReport()
	rep.Meta["model_precision"] = "int8"
	rep.Meta["model_rank"] = "16"
	rep.Gauges["serve.model.bundle_bytes"] = 734003
	rep.Gauges["serve.model.packed_bytes"] = 412000
	out := render(rep, "http://x")
	for _, want := range []string{
		"model int8 rank 16",
		"bundle 716.8 KiB",
		"packed weights 402.3 KiB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("model panel missing %q:\n%s", want, out)
		}
	}

	// An uncompressed bundle: no precision/rank meta, full-rank label.
	rep2 := sampleReport()
	rep2.Gauges["serve.model.bundle_bytes"] = 4.5 * (1 << 20)
	out2 := render(rep2, "http://x")
	if !strings.Contains(out2, "model float64 full-rank — bundle 4.50 MiB") {
		t.Errorf("uncompressed model line missing:\n%s", out2)
	}

	// No bundle loaded yet: the line is absent entirely.
	if out3 := render(sampleReport(), "http://x"); strings.Contains(out3, "model float64") {
		t.Errorf("model line rendered without a loaded bundle:\n%s", out3)
	}
}

func TestMsFormatting(t *testing.T) {
	cases := map[float64]string{
		0:      "—",
		0.0005: "0.50ms",
		0.042:  "42.0ms",
		0.420:  "420ms",
	}
	for sec, want := range cases {
		if got := ms(sec); got != want {
			t.Errorf("ms(%v) = %q, want %q", sec, got, want)
		}
	}
}

package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleReport() *obs.Report {
	return &obs.Report{
		Meta: map[string]string{"model_version": "3", "front_ends": "FE0,FE1"},
		Counters: map[string]int64{
			"serve.http.errors":         2,
			"serve.score.degraded":      5,
			"serve.queue.rejected":      7,
			"serve.http.score.requests": 900,
		},
		Gauges: map[string]float64{
			"serve.queue.depth":   3,
			"serve.http.inflight": 12,
		},
		Windows: map[string]obs.WindowsData{
			"serve.http.score.seconds": {
				M1: obs.WindowStats{Count: 600, RatePerSec: 10, P50Sec: 0.0021, P95Sec: 0.0084, P99Sec: 0.0152, MeanSec: 0.003},
				M5: obs.WindowStats{Count: 2400, RatePerSec: 8, P99Sec: 0.0201},
			},
			"serve.http.batch.seconds": {
				M1: obs.WindowStats{Count: 60, RatePerSec: 1, P50Sec: 0.011},
			},
			"serve.http.errors":        {M1: obs.WindowStats{Count: 2, RatePerSec: 0.03}},
			"serve.score.degraded":     {M1: obs.WindowStats{Count: 5, RatePerSec: 0.08}},
			"serve.queue.wait_seconds": {M1: obs.WindowStats{Count: 600, P50Sec: 0.0002, P95Sec: 0.0009, P99Sec: 0.0015}},
			"serve.batch.size":         {M1: obs.WindowStats{Count: 80, MeanSec: 7.5}},
		},
	}
}

func TestRenderDashboard(t *testing.T) {
	out := render(sampleReport(), "http://127.0.0.1:8080")
	for _, want := range []string{
		"model v3",
		"front-ends FE0,FE1",
		"queue depth 3",
		"inflight 12",
		"score",  // endpoint row
		"batch",  // endpoint row
		"10.0",   // score req/s 1m
		"2.10ms", // score p50 1m
		"8.40ms", // p95
		"15.2ms", // p99 (adaptive precision)
		"20.1ms", // p99 5m
		"(total 2)",
		"(total 5)",
		"429 total 7",
		"batch size 1m mean 7.5 (n=80)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Endpoint rows are sorted for a stable layout.
	if strings.Index(out, "batch ") > strings.Index(out, "score ") {
		t.Errorf("endpoint rows not sorted:\n%s", out)
	}
}

func TestRenderEmptyReport(t *testing.T) {
	// A freshly started daemon (no traffic yet) must render, not panic.
	out := render(&obs.Report{}, "http://x")
	if !strings.Contains(out, "lrestat — http://x") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "endpoint") {
		t.Errorf("table header missing:\n%s", out)
	}
}

func TestEndpointRows(t *testing.T) {
	rows := endpointRows(map[string]obs.WindowsData{
		"serve.http.score.seconds": {},
		"serve.http.batch.seconds": {},
		"serve.queue.wait_seconds": {}, // not an endpoint latency metric
		"serve.http..seconds":      {}, // degenerate: empty name skipped
	})
	if len(rows) != 2 || rows[0] != "batch" || rows[1] != "score" {
		t.Fatalf("endpointRows = %v, want [batch score]", rows)
	}
}

func TestMsFormatting(t *testing.T) {
	cases := map[float64]string{
		0:      "—",
		0.0005: "0.50ms",
		0.042:  "42.0ms",
		0.420:  "420ms",
	}
	for sec, want := range cases {
		if got := ms(sec); got != want {
			t.Errorf("ms(%v) = %q, want %q", sec, got, want)
		}
	}
}

package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Rendering is a pure function of the fetched report so it can be tested
// without a live daemon (and so -once output is pipeable).

// render formats one /metricsz report as the dashboard screen.
func render(rep *obs.Report, target string) string {
	var b strings.Builder

	fmt.Fprintf(&b, "lrestat — %s", target)
	if mv := rep.Meta["model_version"]; mv != "" {
		fmt.Fprintf(&b, "   model v%s", mv)
	}
	if fes := rep.Meta["front_ends"]; fes != "" {
		fmt.Fprintf(&b, "   front-ends %s", fes)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "queue depth %s   inflight %s   draining %s\n\n",
		fmtGauge(rep.Gauges, "serve.queue.depth"),
		fmtGauge(rep.Gauges, "serve.http.inflight"),
		fmtGauge(rep.Gauges, "serve.draining"))

	// RED per endpoint: every serve.http.<name>.seconds window is one row.
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s │ %9s %9s\n",
		"endpoint", "req/s 1m", "p50 1m", "p95 1m", "p99 1m", "mean 1m", "req/s 5m", "p99 5m")
	b.WriteString(strings.Repeat("─", 92) + "\n")
	for _, name := range endpointRows(rep.Windows) {
		wd := rep.Windows["serve.http."+name+".seconds"]
		fmt.Fprintf(&b, "%-10s %9.1f %9s %9s %9s %9s │ %9.1f %9s\n",
			name,
			wd.M1.RatePerSec, ms(wd.M1.P50Sec), ms(wd.M1.P95Sec), ms(wd.M1.P99Sec), ms(wd.M1.MeanSec),
			wd.M5.RatePerSec, ms(wd.M5.P99Sec))
	}
	b.WriteByte('\n')

	// Errors and degradation (the RED "E"), windowed and cumulative.
	errs := rep.Windows["serve.http.errors"]
	deg := rep.Windows["serve.score.degraded"]
	fmt.Fprintf(&b, "5xx/s 1m %8.2f  (total %d)    degraded/s 1m %8.2f  (total %d)    429 total %d\n",
		errs.M1.RatePerSec, rep.Counters["serve.http.errors"],
		deg.M1.RatePerSec, rep.Counters["serve.score.degraded"],
		rep.Counters["serve.queue.rejected"])

	// Batching health: queue wait and batch size over the last minute.
	qw := rep.Windows["serve.queue.wait_seconds"]
	bs := rep.Windows["serve.batch.size"]
	fmt.Fprintf(&b, "queue wait 1m p50 %s p95 %s p99 %s    batch size 1m mean %.1f (n=%d)\n",
		ms(qw.M1.P50Sec), ms(qw.M1.P95Sec), ms(qw.M1.P99Sec), bs.M1.MeanSec, bs.M1.Count)

	return b.String()
}

// endpointRows extracts the endpoint names that have latency windows,
// sorted for a stable screen layout.
func endpointRows(windows map[string]obs.WindowsData) []string {
	var names []string
	for k := range windows {
		if rest, ok := strings.CutPrefix(k, "serve.http."); ok {
			if name, ok := strings.CutSuffix(rest, ".seconds"); ok && name != "" {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// ms renders a seconds quantity as adaptive-precision milliseconds.
func ms(sec float64) string {
	v := sec * 1e3
	switch {
	case v == 0:
		return "—"
	case v < 10:
		return fmt.Sprintf("%.2fms", v)
	case v < 100:
		return fmt.Sprintf("%.1fms", v)
	default:
		return fmt.Sprintf("%.0fms", v)
	}
}

func fmtGauge(gauges map[string]float64, key string) string {
	v, ok := gauges[key]
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%g", v)
}

package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Rendering is a pure function of the fetched report so it can be tested
// without a live daemon (and so -once output is pipeable).

// render formats one /metricsz report as the dashboard screen.
func render(rep *obs.Report, target string) string {
	var b strings.Builder

	fmt.Fprintf(&b, "lrestat — %s", target)
	if mv := rep.Meta["model_version"]; mv != "" {
		fmt.Fprintf(&b, "   model v%s", mv)
	}
	if fes := rep.Meta["front_ends"]; fes != "" {
		fmt.Fprintf(&b, "   front-ends %s", fes)
	}
	b.WriteByte('\n')

	// Model footprint: present once a bundle has been loaded (the
	// registry publishes its on-disk and packed-weight sizes at Reload).
	// Compressed bundles additionally carry precision and rank.
	if bb, ok := rep.Gauges["serve.model.bundle_bytes"]; ok {
		prec := rep.Meta["model_precision"]
		if prec == "" {
			prec = "float64"
		}
		fmt.Fprintf(&b, "model %s", prec)
		if r := rep.Meta["model_rank"]; r != "" {
			fmt.Fprintf(&b, " rank %s", r)
		} else {
			b.WriteString(" full-rank")
		}
		fmt.Fprintf(&b, " — bundle %s (packed weights %s)\n",
			bytesHuman(bb), bytesHuman(rep.Gauges["serve.model.packed_bytes"]))
	}

	fmt.Fprintf(&b, "queue depth %s   inflight %s   draining %s   reload breaker %s\n",
		fmtGauge(rep.Gauges, "serve.queue.depth"),
		fmtGauge(rep.Gauges, "serve.http.inflight"),
		fmtGauge(rep.Gauges, "serve.draining"),
		breakerState(rep.Gauges))

	// Adaptation row: only on daemons running -adapt (the generation gauge
	// is then always published, even at generation 0).
	if gen, ok := rep.Gauges["adapt.generation"]; ok {
		fmt.Fprintf(&b, "adapt gen %.0f   buffer %s   shadow %s   promoted %d   rolled back %d   vetoed %d   quarantined %d\n",
			gen,
			fmtGauge(rep.Gauges, "adapt.buffer_utts"),
			fmtGauge(rep.Gauges, "adapt.shadow_utts"),
			rep.Counters["adapt.promotions"], rep.Counters["adapt.rollbacks"],
			rep.Counters["adapt.vetoes"], rep.Counters["adapt.quarantined"])
	}
	b.WriteByte('\n')

	// RED per endpoint: every serve.http.<name>.seconds window is one
	// row; a coordinator's cluster.http.<name>.seconds windows render as
	// "c/<name>" rows (both tiers appear when the processes co-reside).
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s │ %9s %9s\n",
		"endpoint", "req/s 1m", "p50 1m", "p95 1m", "p99 1m", "mean 1m", "req/s 5m", "p99 5m")
	b.WriteString(strings.Repeat("─", 92) + "\n")
	for _, row := range endpointRows(rep.Windows) {
		wd := rep.Windows[row.key]
		fmt.Fprintf(&b, "%-10s %9.1f %9s %9s %9s %9s │ %9.1f %9s\n",
			row.label,
			wd.M1.RatePerSec, ms(wd.M1.P50Sec), ms(wd.M1.P95Sec), ms(wd.M1.P99Sec), ms(wd.M1.MeanSec),
			wd.M5.RatePerSec, ms(wd.M5.P99Sec))
	}
	b.WriteByte('\n')

	// Errors and degradation (the RED "E"), windowed and cumulative.
	errs := rep.Windows["serve.http.errors"]
	deg := rep.Windows["serve.score.degraded"]
	fmt.Fprintf(&b, "5xx/s 1m %8.2f  (total %d)    degraded/s 1m %8.2f  (total %d)    429 total %d\n",
		errs.M1.RatePerSec, rep.Counters["serve.http.errors"],
		deg.M1.RatePerSec, rep.Counters["serve.score.degraded"],
		rep.Counters["serve.queue.rejected"])

	// Batching health: queue wait and batch size over the last minute.
	qw := rep.Windows["serve.queue.wait_seconds"]
	bs := rep.Windows["serve.batch.size"]
	fmt.Fprintf(&b, "queue wait 1m p50 %s p95 %s p99 %s    batch size 1m mean %.1f (n=%d)\n",
		ms(qw.M1.P50Sec), ms(qw.M1.P95Sec), ms(qw.M1.P99Sec), bs.M1.MeanSec, bs.M1.Count)

	// Cascade rows: only on daemons running -cascade (the exit/escalate
	// counters then partition every scoring utterance). A coordinator's
	// cluster.cascade.* tier renders as its own c/cascade row, same
	// labelling convention as the RED table.
	for _, row := range []struct{ label, prefix string }{
		{"cascade", "serve.cascade."},
		{"c/cascade", "cluster.cascade."},
	} {
		exit := rep.Counters[row.prefix+"exit"]
		esc := rep.Counters[row.prefix+"escalate"]
		if exit+esc == 0 {
			continue
		}
		wexit := rep.Windows[row.prefix+"exit"]
		t1 := rep.Windows[row.prefix+"tier1.seconds"]
		hv := rep.Windows[row.prefix+"escalated.seconds"]
		fmt.Fprintf(&b, "%s exit %.1f%% (%d/%d)   exits/s 1m %.2f   tier1 fails %d   tier1 p95 1m %s   escalated p95 1m %s\n",
			row.label, 100*float64(exit)/float64(exit+esc), exit, exit+esc,
			wexit.M1.RatePerSec, rep.Counters[row.prefix+"tier1.failed"],
			ms(t1.M1.P95Sec), ms(hv.M1.P95Sec))
	}

	// Shards panel: one row per worker peer, from the coordinator's
	// cluster.peer.<addr>.* health metrics and cluster.rpc.<addr>.seconds
	// latency windows. Only rendered when the target is a coordinator.
	if hosts := shardRows(rep.Gauges); len(hosts) > 0 {
		b.WriteByte('\n')
		b.WriteString("shards")
		if g := rep.Meta["cluster_generation"]; g != "" {
			fmt.Fprintf(&b, " — generation %s", g)
		}
		fmt.Fprintf(&b, " (%d workers)\n", len(hosts))
		fmt.Fprintf(&b, "%-28s %5s %8s %6s %9s %9s %9s   %s\n",
			"worker", "up", "breaker", "fails", "rpc/s 1m", "p95 1m", "p99 1m", "front-ends")
		b.WriteString(strings.Repeat("─", 92) + "\n")
		for _, h := range hosts {
			up, brk := "down", "closed"
			if rep.Gauges["cluster.peer."+h+".up"] > 0 {
				up = "up"
			}
			if rep.Gauges["cluster.peer."+h+".breaker_open"] > 0 {
				brk = "open"
			}
			wd := rep.Windows["cluster.rpc."+h+".seconds"]
			fmt.Fprintf(&b, "%-28s %5s %8s %6d %9.1f %9s %9s   %s\n",
				h, up, brk, rep.Counters["cluster.peer."+h+".failures"],
				wd.M1.RatePerSec, ms(wd.M1.P95Sec), ms(wd.M1.P99Sec),
				rep.Meta["shard."+h])
		}
		cerrs := rep.Windows["cluster.http.errors"]
		cdeg := rep.Windows["cluster.score.degraded"]
		fmt.Fprintf(&b, "coordinator 5xx/s 1m %8.2f  (total %d)    degraded/s 1m %8.2f  (total %d)\n",
			cerrs.M1.RatePerSec, rep.Counters["cluster.http.errors"],
			cdeg.M1.RatePerSec, rep.Counters["cluster.score.degraded"])
	}

	return b.String()
}

// endpointRow is one line of the RED table: a display label plus the
// windows key it reads.
type endpointRow struct {
	label, key string
}

// endpointRows extracts the endpoint names that have latency windows —
// the serving tier's serve.http.* and, on a coordinator, the cluster
// tier's cluster.http.* (labelled c/<name>) — sorted for a stable
// screen layout.
func endpointRows(windows map[string]obs.WindowsData) []endpointRow {
	var rows []endpointRow
	for k := range windows {
		if rest, ok := strings.CutPrefix(k, "serve.http."); ok {
			if name, ok := strings.CutSuffix(rest, ".seconds"); ok && name != "" {
				rows = append(rows, endpointRow{label: name, key: k})
			}
		}
		if rest, ok := strings.CutPrefix(k, "cluster.http."); ok {
			if name, ok := strings.CutSuffix(rest, ".seconds"); ok && name != "" {
				rows = append(rows, endpointRow{label: "c/" + name, key: k})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
	return rows
}

// shardRows extracts worker addresses from cluster.peer.<addr>.up
// gauges, sorted for a stable layout.
func shardRows(gauges map[string]float64) []string {
	var hosts []string
	for k := range gauges {
		if rest, ok := strings.CutPrefix(k, "cluster.peer."); ok {
			if h, ok := strings.CutSuffix(rest, ".up"); ok && h != "" {
				hosts = append(hosts, h)
			}
		}
	}
	sort.Strings(hosts)
	return hosts
}

// bytesHuman renders a byte count with adaptive binary units.
func bytesHuman(n float64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", n/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", n)
	}
}

// ms renders a seconds quantity as adaptive-precision milliseconds.
func ms(sec float64) string {
	v := sec * 1e3
	switch {
	case v == 0:
		return "—"
	case v < 10:
		return fmt.Sprintf("%.2fms", v)
	case v < 100:
		return fmt.Sprintf("%.1fms", v)
	default:
		return fmt.Sprintf("%.0fms", v)
	}
}

// breakerState renders the reload circuit breaker gauge: open/closed, or
// a dash against daemons predating the gauge.
func breakerState(gauges map[string]float64) string {
	v, ok := gauges["serve.reload.breaker_open"]
	switch {
	case !ok:
		return "—"
	case v > 0:
		return "open"
	default:
		return "closed"
	}
}

func fmtGauge(gauges map[string]float64, key string) string {
	v, ok := gauges[key]
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%g", v)
}

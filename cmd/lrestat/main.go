// Command lrestat is a top-like live view of a running lred daemon: it
// polls GET /metricsz (the JSON metrics report) and redraws a terminal
// dashboard of the serving tier's RED metrics — per-endpoint request
// rates and latency quantiles over the rolling 1m/5m windows, error and
// degradation rates, queue depth and wait, and batching effectiveness.
//
// Usage:
//
//	lrestat -addr 127.0.0.1:8080              # redraw every 2s until ^C
//	lrestat -addr 127.0.0.1:8080 -once        # print one snapshot and exit
//
// lrestat needs nothing beyond the daemon's own /metricsz endpoint; the
// same data is available to Prometheus via /metricsz?format=prom.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrestat: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "lred address (host:port or http:// URL)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		rep, err := fetch(client, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(render(rep, base))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		rep, err := fetch(client, base)
		// Clear screen + home; errors render in place of the dashboard so
		// a restarting daemon shows as a blip, not an exit.
		fmt.Print("\x1b[H\x1b[2J")
		if err != nil {
			fmt.Printf("lrestat — %s\n\n  unreachable: %v\n", base, err)
		} else {
			fmt.Print(render(rep, base))
		}
		fmt.Printf("\n%s  (every %s, ^C to quit)\n", time.Now().Format("15:04:05"), *interval)
		select {
		case <-ctx.Done():
			fmt.Println()
			os.Exit(0)
		case <-tick.C:
		}
	}
}

func fetch(client *http.Client, base string) (*obs.Report, error) {
	resp, err := client.Get(base + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metricsz: status %d", resp.StatusCode)
	}
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("/metricsz: %w", err)
	}
	return &rep, nil
}

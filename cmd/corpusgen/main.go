// Command corpusgen generates and inspects the synthetic LRE09 substitute
// corpus: it prints per-split statistics (sizes, channel mixes, duration
// realizations), per-language phonotactic divergences, and optionally a
// sample utterance's phone string through each front-end's decoder.
//
// Usage:
//
//	corpusgen -scale small -seed 42
//	corpusgen -kl              # language confusability matrix summary
//	corpusgen -sample farsi    # decode one utterance through all front-ends
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/frontend"
	"repro/internal/rng"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
	"repro/internal/wav"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")
	var (
		scaleFlag = flag.String("scale", "small", "corpus scale: tiny|small|medium|full")
		seed      = flag.Uint64("seed", 42, "corpus seed")
		showKL    = flag.Bool("kl", false, "print closest-language pairs by phonotactic KL divergence")
		sample    = flag.String("sample", "", "decode one utterance of this language through all six front-ends")
		wavOut    = flag.String("wav", "", "with -sample: also render the utterance's audio to this WAV file")
	)
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.CorpusConfig(scale, *seed)
	c := corpus.Build(cfg)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "split\tutterances\tcts-clean\tcts-noisy\tvoa\tmean dur (s)\n")
	report := func(name string, s *corpus.Split) {
		ch := s.ChannelCounts()
		var totalMs float64
		for _, it := range s.Items {
			totalMs += it.U.TotalDurMs()
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.1f\n", name, s.Len(),
			ch[synthlang.ChannelCTSClean], ch[synthlang.ChannelCTSNoisy], ch[synthlang.ChannelVOA],
			totalMs/float64(s.Len())/1000)
	}
	report("train", c.Train)
	for _, dur := range corpus.Durations {
		report(fmt.Sprintf("dev-%gs", dur), c.Dev[dur])
	}
	for _, dur := range corpus.Durations {
		report(fmt.Sprintf("test-%gs", dur), c.Test[dur])
	}
	w.Flush()

	if *showKL {
		fmt.Println("\nclosest language pairs (symmetrized phonotactic KL):")
		type pair struct {
			a, b string
			kl   float64
		}
		var pairs []pair
		for i := 0; i < len(c.Langs); i++ {
			for j := i + 1; j < len(c.Langs); j++ {
				kl := synthlang.KLDivergence(c.Langs[i], c.Langs[j]) +
					synthlang.KLDivergence(c.Langs[j], c.Langs[i])
				pairs = append(pairs, pair{c.Langs[i].Name, c.Langs[j].Name, kl})
			}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].kl < pairs[j].kl })
		for _, pr := range pairs[:10] {
			fmt.Printf("  %-12s %-12s %.4f\n", pr.a, pr.b, pr.kl)
		}
	}

	if *sample != "" {
		var lang *synthlang.Language
		for _, l := range c.Langs {
			if l.Name == *sample {
				lang = l
			}
		}
		if lang == nil {
			log.Fatalf("unknown language %q (choose from %v)", *sample, synthlang.LanguageNames)
		}
		r := rng.New(*seed + 1234)
		spk := synthlang.NewSpeaker(r, 0)
		u := lang.Sample(r, 5, spk, synthlang.ChannelCTSClean)
		fmt.Printf("\nsample %s utterance: %d phones, %.1fs, channel %s\n",
			lang.Name, len(u.Segments), u.TotalDurMs()/1000, u.Channel)
		if *wavOut != "" {
			samples := synthspeech.New().Render(r.SplitString("render"), u)
			var peak float64
			for _, v := range samples {
				if a := math.Abs(v); a > peak {
					peak = a
				}
			}
			if peak > 0 {
				for i := range samples {
					samples[i] *= 0.99 / peak
				}
			}
			if err := wav.WriteFile(*wavOut, samples, synthspeech.SampleRate); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%.1fs at %d Hz)\n", *wavOut,
				float64(len(samples))/synthspeech.SampleRate, synthspeech.SampleRate)
		}
		for _, fe := range frontend.StandardSix(*seed) {
			l := fe.Decode(r.SplitString(fe.Name), u)
			best, _ := l.BestPath()
			fmt.Printf("  %-7s (%d phones): lattice %d nodes / %d edges, 1-best %v…\n",
				fe.Name, fe.Set.Size, l.NumNodes, l.NumEdges(), truncate(best, 15))
		}
	}
}

func truncate(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

// Command trainfe trains an acoustic phone recognizer on synthetic
// telephone speech and reports decoder diagnostics: phone error rate of
// the 1-best path, lattice oracle error, lattice density, and the effect
// of the Kneser–Ney phone language model.
//
// Usage:
//
//	trainfe -kind gmm -phones 20 -train 40 -test 8
//	trainfe -kind dnn -phones 33
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/align"
	"repro/internal/frontend"
	"repro/internal/rng"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainfe: ")
	var (
		kindFlag  = flag.String("kind", "gmm", "acoustic model family: gmm|ann|dnn")
		numPhones = flag.Int("phones", 20, "front-end phone inventory size (8..64)")
		trainUtts = flag.Int("train", 40, "training utterances")
		testUtts  = flag.Int("test", 8, "test utterances")
		durS      = flag.Float64("dur", 5, "utterance duration (seconds)")
		seed      = flag.Uint64("seed", 42, "seed")
		noLM      = flag.Bool("nolm", false, "disable the Kneser-Ney phone LM")
	)
	flag.Parse()

	var kind frontend.Kind
	switch *kindFlag {
	case "gmm":
		kind = frontend.GMMHMM
	case "ann":
		kind = frontend.ANNHMM
	case "dnn":
		kind = frontend.DNNHMM
	default:
		log.Fatalf("unknown kind %q", *kindFlag)
	}

	langs := synthlang.Generate(synthlang.DefaultConfig(), *seed)[:4]
	cfg := frontend.DefaultAcousticConfig("fe", kind, *numPhones, *seed)
	cfg.TrainUtterances = *trainUtts
	cfg.UtteranceDurS = *durS
	cfg.UsePhoneLM = !*noLM

	log.Printf("training %s recognizer: %d phones, %d utterances of %.0fs…",
		kind, *numPhones, *trainUtts, *durS)
	fe, err := frontend.TrainAcoustic(cfg, langs)
	if err != nil {
		log.Fatal(err)
	}

	synth := synthspeech.New()
	root := rng.New(*seed + 1)
	var agg align.Counts
	var oracleSum float64
	var edges, nodes int
	for i := 0; i < *testUtts; i++ {
		r := root.Split(uint64(i))
		spk := synthlang.SpeakerProfile{Rate: 1, SubstitutionProb: 0, PitchHz: 120 + 20*float64(i%4)}
		u := langs[i%len(langs)].Sample(r, *durS, spk, synthlang.ChannelCTSClean)
		wav := synth.Render(r, u)
		lat := fe.DecodeAudio(wav)

		// Reference in front-end phones (merging repeats, as decoding does).
		var ref []int
		for _, seg := range u.Segments {
			p := fe.Set.Map(seg.Phone)
			if len(ref) == 0 || ref[len(ref)-1] != p {
				ref = append(ref, p)
			}
		}
		best, _ := lat.BestPath()
		c := align.Align(ref, best)
		agg.Hits += c.Hits
		agg.Subs += c.Subs
		agg.Ins += c.Ins
		agg.Dels += c.Dels
		oracleSum += lat.OracleErrorRate(ref)
		edges += lat.NumEdges()
		nodes += lat.NumNodes
	}
	fmt.Printf("1-best phone accuracy: %.1f%%  (PER %.1f%%: %d hits, %d subs, %d ins, %d dels)\n",
		agg.Accuracy()*100, agg.ErrorRate()*100, agg.Hits, agg.Subs, agg.Ins, agg.Dels)
	fmt.Printf("lattice oracle PER:    %.1f%%  (richness of the confusion networks)\n",
		oracleSum/float64(*testUtts)*100)
	fmt.Printf("lattice density:       %.2f edges/slot over %d test utterances\n",
		float64(edges)/float64(nodes-*testUtts), *testUtts)
	if cfg.UsePhoneLM {
		fmt.Println("phone LM:              Kneser-Ney bigram applied at phone boundaries")
	} else {
		fmt.Println("phone LM:              disabled")
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/serve"
)

// The fleet load benchmark behind BENCH_serve.json's "fleet" section:
// the same request mix driven against a standalone daemon and against a
// 1-coordinator × N-worker topology, everything in one process over
// loopback TCP. Every fleet response is checked bit-identical against
// the batch pipeline's baseline scores — the same oracle the standalone
// phase uses, so fleet ≡ standalone at equal correctness — and any
// degraded response fails the run (a healthy fleet must never degrade).
//
// What the comparison shows is the scatter–gather tax: with all tiers
// sharing one machine there is no hardware to win back, so fleet
// throughput ≤ standalone and the gap prices the per-request fan-out
// (sub-request marshaling, N loopback RPCs, gather + fusion). On real
// hardware the same topology splits the front-end battery across
// machines; the tax stays, the scoring capacity multiplies.

type fleetReport struct {
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	Clients    int    `json:"clients"`
	Repeats    int    `json:"repeats"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go"`

	Standalone benchSummary `json:"standalone"`
	Fleet      benchSummary `json:"fleet"`

	// ThroughputRatio is fleet/standalone aggregate throughput on this
	// single machine (< 1: the scatter–gather tax; see the file comment).
	ThroughputRatio float64 `json:"fleet_throughput_ratio"`
	// RPCP50Ms/P99Ms price one coordinator→shard hop, from the
	// coordinator's cluster.rpc.<addr>.seconds histograms (worst peer).
	RPCP50Ms float64 `json:"shard_rpc_p50_ms"`
	RPCP99Ms float64 `json:"shard_rpc_p99_ms"`
}

func runBenchFleet(cfg benchConfig) error {
	scale, err := experiments.ParseScale(cfg.scale)
	if err != nil {
		return err
	}
	if cfg.workers < 1 {
		cfg.workers = 2
	}
	log.Printf("bench-fleet: building pipeline (scale=%s seed=%d)…", scale, cfg.seed)
	p := experiments.BuildPipeline(scale, cfg.seed)
	dir, err := os.MkdirTemp("", "lred-bench-fleet")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, err := p.ExportModels(dir, ""); err != nil {
		return err
	}
	bodies, expected, feNames := benchRequestsFrom(p)
	log.Printf("bench-fleet: %d distinct utterances, %d requests × %d clients per phase, %d workers",
		len(bodies), cfg.requests, cfg.clients, cfg.workers)

	if cfg.repeats < 1 {
		cfg.repeats = 1
	}
	runs := make([][]benchPhase, 2)
	for r := 0; r < cfg.repeats; r++ {
		order := []int{0, 1}
		if r%2 == 1 {
			order = []int{1, 0}
		}
		for _, ci := range order {
			var phase *benchPhase
			var err error
			if ci == 0 {
				phase, err = runBenchPhase(dir, "standalone", cfg.maxBatch, false, cfg, bodies, expected, feNames)
			} else {
				phase, err = runFleetPhase(dir, cfg, bodies, expected, feNames)
			}
			if err != nil {
				return fmt.Errorf("bench-fleet phase %d: %w", ci, err)
			}
			log.Printf("bench-fleet: [%d/%d] %-10s %8.1f req/s  p50=%.3gms p99=%.3gms  (%d scores checked, %d mismatches)",
				r+1, cfg.repeats, phase.Name, phase.Throughput, phase.P50Ms, phase.P99Ms, phase.ScoreChecked, phase.Mismatches)
			if phase.Mismatches > 0 {
				return fmt.Errorf("bench-fleet phase %s: %d score mismatches — fleet is not bit-identical", phase.Name, phase.Mismatches)
			}
			runs[ci] = append(runs[ci], *phase)
		}
	}

	rep := fleetReport{
		Scale:      scale.String(),
		Seed:       cfg.seed,
		Clients:    cfg.clients,
		Repeats:    cfg.repeats,
		Workers:    cfg.workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Standalone: summarize(runs[0]),
		Fleet:      summarize(runs[1]),
	}
	if rep.Standalone.Throughput > 0 {
		rep.ThroughputRatio = rep.Fleet.Throughput / rep.Standalone.Throughput
	}
	// Shard-RPC quantiles from the last fleet run's metrics (stored on the
	// phase by runFleetPhase).
	last := runs[1][len(runs[1])-1]
	rep.RPCP50Ms, rep.RPCP99Ms = last.rpcP50Ms, last.rpcP99Ms

	if err := mergeBenchFleet(cfg.out, &rep); err != nil {
		return err
	}
	log.Printf("bench-fleet: fleet runs at %.2fx standalone throughput on one machine (shard RPC p50=%.3gms p99=%.3gms); wrote %s",
		rep.ThroughputRatio, rep.RPCP50Ms, rep.RPCP99Ms, cfg.out)
	return nil
}

// runFleetPhase boots cfg.workers shard workers plus one coordinator
// over loopback TCP, distributes the bundle, and drives the same
// request mix through the coordinator's /v1/score.
func runFleetPhase(modelDir string, cfg benchConfig, bodies [][]byte, expected [][][]float64, feNames []string) (ph *benchPhase, err error) {
	obs.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	var drains []chan error
	defer func() {
		cancel()
		for _, ch := range drains {
			if derr := <-ch; derr != nil && err == nil {
				err = fmt.Errorf("drain: %w", derr)
			}
		}
	}()

	var peers []string
	for i := 0; i < cfg.workers; i++ {
		spool, err := os.MkdirTemp("", "lred-fleet-shard")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(spool)
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Spool: spool,
			// Generous deadlines throughout: the bench prices the fan-out,
			// it must never exercise failure handling, and with every tier
			// sharing one loaded machine the tail is the scheduler's.
			Serve: serve.Config{MaxBatch: cfg.maxBatch, QueueDepth: 4096, RequestTimeout: 60 * time.Second},
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ch := make(chan error, 1)
		drains = append(drains, ch)
		go func() { ch <- w.Run(ctx, ln) }()
		peers = append(peers, ln.Addr().String())
	}

	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		ModelDir:       modelDir,
		Peers:          peers,
		ShardTimeout:   60 * time.Second, // see the worker config note above
		RequestTimeout: 120 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := coord.Distribute(ctx); err != nil {
		return nil, err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ch := make(chan error, 1)
	drains = append(drains, ch)
	go func() { ch <- coord.Run(ctx, cln) }()

	base := "http://" + cln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}

	var next, checked, mismatches, degraded atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.requests {
					return
				}
				j := i % len(bodies)
				resp, err := client.Post(base+"/v1/score", "application/json", bytes.NewReader(bodies[j]))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d: %s", resp.StatusCode, data))
					return
				}
				var sr serve.ScoreResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if sr.Degraded {
					degraded.Add(1)
				}
				for q, fe := range feNames {
					got, want := sr.Scores[fe], expected[j][q]
					if len(got) != len(want) {
						mismatches.Add(1)
						continue
					}
					for k := range want {
						checked.Add(1)
						if got[k] != want[k] {
							mismatches.Add(1)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	if n := degraded.Load(); n > 0 {
		return nil, fmt.Errorf("%d responses degraded on a healthy fleet", n)
	}

	metrics, err := fetchMetrics(client, base)
	if err != nil {
		return nil, err
	}
	ph = &benchPhase{
		Name:        "fleet",
		MaxBatch:    cfg.maxBatch,
		Requests:    cfg.requests,
		WallSeconds: wall.Seconds(),
		Throughput:  float64(cfg.requests) / wall.Seconds(),
		// The workers run in-process, so their serve.* metrics share the
		// registry and the batching/scoring columns stay meaningful.
		Batches:          metrics.Counters["serve.batches"],
		Rejected:         metrics.Counters["serve.queue.rejected"],
		ScoreBusySeconds: float64(metrics.Counters["pool.serve-score.busy_ns"]) / 1e9,
		ScoreChecked:     int(checked.Load()),
		Mismatches:       int(mismatches.Load()),
	}
	ph.ScoreUsPerReq = ph.ScoreBusySeconds / float64(cfg.requests) * 1e6
	if h, ok := metrics.Histograms["cluster.http.score.seconds"]; ok {
		ph.P50Ms = h.P50Sec * 1e3
		ph.P99Ms = h.P99Sec * 1e3
	}
	if ph.Batches > 0 {
		ph.MeanBatch = float64(metrics.Counters["serve.batched_jobs"]) / float64(ph.Batches)
	}
	// Worst-peer shard-RPC quantiles price the extra hop.
	for name, h := range metrics.Histograms {
		if len(name) > 12 && name[:12] == "cluster.rpc." {
			if ms := h.P50Sec * 1e3; ms > ph.rpcP50Ms {
				ph.rpcP50Ms = ms
			}
			if ms := h.P99Sec * 1e3; ms > ph.rpcP99Ms {
				ph.rpcP99Ms = ms
			}
		}
	}
	return ph, nil
}

// mergeBenchFleet writes rep under the "fleet" key of out, preserving
// any other top-level keys (the micro-batching report lives at the top
// level of BENCH_serve.json; see mergeBenchObs for the idiom).
func mergeBenchFleet(out string, rep *fleetReport) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["fleet"] = enc
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	e := json.NewEncoder(f)
	e.SetIndent("", "  ")
	if err := e.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

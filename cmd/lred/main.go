// Command lred is the online scoring daemon: it loads a model bundle
// exported by `lre -export-models`, and serves language-recognition
// scores over HTTP/JSON with micro-batched SVM scoring, bounded-queue
// backpressure, hot model reload, and graceful drain.
//
// Usage:
//
//	lre -scale small -seed 42 -export-models ./models
//	lred -models ./models -addr 127.0.0.1:8080
//
// Endpoints:
//
//	POST /v1/score        score one utterance (per-front-end lattice or supervector)
//	POST /v1/score/batch  score many utterances in one call
//	GET  /healthz         process liveness
//	GET  /readyz          model loaded and not draining
//	GET  /metricsz        serving metrics (see format negotiation below)
//	GET  /tracez          bounded buffer of recent/slowest/degraded request traces
//	POST /-/reload        reload the bundle directory (SIGHUP does the same)
//	GET  /adaptz          online-adaptation loop status (enabled:false when off)
//	POST /-/adapt/promote force one gated promotion attempt (-adapt only)
//	POST /-/adapt/rollback roll back to the last-known-good generation (-adapt only)
//
// Online adaptation (-adapt, standalone role only): the daemon buffers
// served full-battery utterances, periodically retrains the SVM battery
// on the high-vote ones (the paper's Eq. 13 DBA selection, off the
// request path), and hot-swaps the result in — but only after a
// three-stage safety gate: a golden-score canary on a frozen referee
// set, an EER-must-not-regress check on a frozen holdout, and shadow
// rescoring of sampled live traffic. Promotions are generation-versioned
// on disk (gen-NNNNNN directories + a sealed CURRENT pointer), crash-safe
// (a torn candidate is quarantined, never served), and reversible: the
// post-promotion canary probe rolls back to last-known-good
// automatically, and POST /-/adapt/rollback does it on demand. The
// default ('-adapt=off') leaves serving bit-identical to a daemon
// without the subsystem. See DESIGN.md "Online adaptation & safe
// promotion".
//
// Metrics format negotiation: /metricsz serves the metrics-only
// internal/obs report — counters, gauges, histograms, and 1m/5m rolling
// RED windows — as JSON by default. `?format=prom` (or `prometheus`)
// switches to the Prometheus text exposition format 0.0.4 (Content-Type
// `text/plain; version=0.0.4`), with metric names sanitized to the
// Prometheus alphabet (`serve.http.score.seconds` →
// `serve_http_score_seconds`), counters suffixed `_total`, and histograms
// rendered as cumulative `_bucket{le=...}` series closed by `+Inf` plus
// `_sum`/`_count`. Any other format value is a 400. `lrestat` renders the
// JSON view as a live terminal dashboard.
//
// Tracing: every scoring request accepts a W3C `traceparent` header (or
// mints a fresh trace), returns the id in the response header and body,
// and files the finished span tree — queue wait, batch formation,
// per-front-end scoring, fusion — into the /tracez buffer. Degraded and
// errored traces are always retained. -no-trace turns all of it off.
// -access-log emits sampled JSON access-log lines (one object per line,
// keyed by the same trace id; degraded/errored requests always log) to
// stderr, stdout, or a file; -access-log-every N keeps every Nth line.
//
// Robustness: per-request deadlines (-timeout), 429 + Retry-After when
// the admission queue is full (-queue), panic-isolated scoring workers,
// graceful front-end degradation (a failing recognizer/SVM is dropped
// from fusion and the response is marked degraded), reload retry/backoff
// behind a circuit breaker (-reload-retries, -reload-backoff,
// -breaker-trip, -breaker-cooldown), and graceful drain on
// SIGTERM/SIGINT — queued work finishes, new work gets 503, and the
// process exits 0 within -drain-timeout.
//
// Chaos mode enables the deterministic fault-injection layer for the
// whole process (see internal/faultinject; TESTING.md documents the spec
// grammar). The CI chaos-smoke job runs the daemon this way:
//
//	lred -models ./models -chaos 'seed=7; serve.score.fe.HU:error:p=0.2'
//
// Cascade mode (-cascade) turns on the two-tier scoring cascade when the
// bundle carries a tier-1 model (lre -export-models embeds one whenever
// the pipeline can train it): requests whose tier-1 PRLM margin clears
// the calibrated per-duration bar are answered from the cheap path —
// the supervector/SVM battery never runs — and everything else escalates
// unchanged. -cascade-margin shifts the calibrated thresholds ('-inf'
// escalates everything, bit-identical to running without -cascade;
// '+inf' answers everything at tier 1). Both the standalone daemon and
// the cluster coordinator honor it (a coordinator-side tier-1 exit skips
// the shard fan-out entirely); exit/escalate rates, tier-1 failures, and
// per-path latency land under serve.cascade.* / cluster.cascade.* in
// /metricsz and render as a cascade row in lrestat.
//
// Cluster roles (-role, default standalone): the same binary runs the
// distributed scatter–gather topology from internal/cluster.
//
//	lred -models ./models -addr :8080                        # standalone (default)
//	lred -role=worker -spool /tmp/shard0 -addr :9101         # shard worker
//	lred -role=worker -spool /tmp/shard1 -addr :9102
//	lred -role=coordinator -models ./models -addr :8080 \
//	     -peers 127.0.0.1:9101,127.0.0.1:9102
//
// The coordinator owns the full bundle: it splits the front-end battery
// round-robin across the workers, pushes each shard its sub-bundle
// (generation-stamped, fusion stripped), and serves the standalone
// scoring API by scattering per-front-end RPCs and fusing the gathered
// rows — bit-identical to standalone when every shard answers, survivor
// fusion (degraded:true) when one misses its -shard-timeout. Workers
// start with an empty -spool and wait for the push. SIGHUP on the
// coordinator reloads + redistributes (generation-consistent: the plan
// only advances when every worker acked).
//
// Benchmark modes (write a report and exit):
//
//	lred -bench-out BENCH_serve.json -bench-scale small -bench-requests 2000
//	lred -bench-obs BENCH_obs.json -bench-scale small -bench-requests 2000
//	lred -bench-fleet BENCH_serve.json -bench-workers 2
//
// -bench-out measures micro-batching speedup; -bench-obs measures the
// overhead of request tracing + rolling windows (merged under the
// "serve_overhead" key, other keys in the file are preserved);
// -bench-fleet measures standalone vs coordinator + N workers over
// loopback (merged under the "fleet" key). All check every response
// bit-identical against the offline pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lred: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		models       = flag.String("models", "", "bundle directory written by lre -export-models (required)")
		maxBatch     = flag.Int("max-batch", 16, "max requests sharing one scoring pass")
		batchWait    = flag.Duration("batch-wait", 2*time.Millisecond, "how long a non-full batch waits for more requests")
		queueDepth   = flag.Int("queue", 256, "admission queue depth (beyond it: 429 + Retry-After)")
		workers      = flag.Int("workers", 0, "scoring pool size (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request deadline (queueing + scoring)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget on SIGTERM")

		reloadRetries = flag.Int("reload-retries", 2, "extra attempts after a failed model reload")
		reloadBackoff = flag.Duration("reload-backoff", 100*time.Millisecond, "initial reload retry backoff (doubles per retry)")
		breakerTrip   = flag.Int("breaker-trip", 3, "consecutive failed reloads that open the circuit breaker")
		breakerCool   = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker rejects reloads before probing")
		chaos         = flag.String("chaos", "", "fault-injection plan, e.g. 'seed=7; serve.score.fe.HU:error:p=0.2' (testing only)")

		cascadeOn     = flag.Bool("cascade", false, "enable the two-tier cascade fast path (the bundle must carry a cascade model; bundles without one escalate everything)")
		cascadeMargin = flag.String("cascade-margin", "", "cascade threshold-offset policy: a bare offset ('0.05', '-inf', '+inf') or per-tier overrides ('default=0;30s=0.1'); empty = calibrated margins as-is")
		adaptSpec     = flag.String("adapt", "off", "online DBA self-training: 'off' (default), 'on' (default policy), or a policy spec like 'cadence=5m;votes=4;method=m2;eer-budget=0.5' (standalone role only; the bundle must carry an adapt sidecar)")

		accessLog      = flag.String("access-log", "stderr", "access-log destination: stderr, stdout, a file path, or 'none'")
		accessLogEvery = flag.Int("access-log-every", 1, "log every Nth request (degraded/errored always log)")
		noTrace        = flag.Bool("no-trace", false, "disable request tracing, /tracez, access logging, and rolling-window metrics")

		role          = flag.String("role", "standalone", "process role: standalone, coordinator, or worker")
		peers         = flag.String("peers", "", "coordinator: comma-separated worker addresses (host:port)")
		spool         = flag.String("spool", "", "worker: local shard-bundle directory the coordinator distributes into")
		shardTimeout  = flag.Duration("shard-timeout", time.Second, "coordinator: per-shard RPC deadline (a late shard degrades like a failed front-end)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "coordinator: worker health-probe and re-push cadence")

		benchOut      = flag.String("bench-out", "", "run the micro-batching load benchmark, write the report here, and exit")
		benchObsOut   = flag.String("bench-obs", "", "run the tracing-overhead benchmark, merge the report into this file, and exit")
		benchFleetOut = flag.String("bench-fleet", "", "run the fleet load benchmark (standalone vs coordinator+workers), merge the report into this file, and exit")
		benchWorkers  = flag.Int("bench-workers", 2, "fleet benchmark worker count")
		benchScale    = flag.String("bench-scale", "small", "benchmark corpus scale")
		benchSeed     = flag.Uint64("bench-seed", 42, "benchmark pipeline seed")
		benchRequests = flag.Int("bench-requests", 2000, "benchmark requests per phase run")
		benchClients  = flag.Int("bench-clients", 128, "benchmark concurrent clients")
		benchRepeats  = flag.Int("bench-repeats", 3, "interleaved repeats per benchmark configuration")
	)
	flag.Parse()

	if *benchOut != "" || *benchObsOut != "" || *benchFleetOut != "" {
		cfg := benchConfig{
			scale:    *benchScale,
			seed:     *benchSeed,
			requests: *benchRequests,
			clients:  *benchClients,
			repeats:  *benchRepeats,
			maxBatch: *maxBatch,
			workers:  *benchWorkers,
			out:      *benchOut,
		}
		run := runBench
		if *benchObsOut != "" {
			cfg.out, run = *benchObsOut, runBenchObs
		}
		if *benchFleetOut != "" {
			cfg.out, run = *benchFleetOut, runBenchFleet
		}
		if err := run(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	switch *role {
	case "standalone", "coordinator", "worker":
	default:
		log.Fatalf("unknown -role %q (want standalone, coordinator, or worker)", *role)
	}
	if *role == "worker" {
		if *spool == "" {
			log.Fatal("worker role needs -spool (the coordinator distributes bundles into it)")
		}
	} else if *models == "" {
		log.Fatal("no -models directory (export one with: lre -export-models <dir>)")
	}
	if *adaptSpec != "" && *adaptSpec != "off" && *role != "standalone" {
		// Coordinator/worker promotion would need cluster-wide generation
		// consensus; the self-training loop is a standalone feature.
		log.Fatalf("-adapt is standalone-only (role %q)", *role)
	}
	if *chaos != "" {
		plan, err := faultinject.ParsePlan(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		faultinject.Enable(plan)
		log.Printf("CHAOS MODE: fault injection enabled (seed=%d, %d rules) — not for production",
			plan.Seed, len(plan.Rules))
	}
	logDst, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatal(err)
	}
	serveCfg := serve.Config{
		ModelDir:       *models,
		MaxBatch:       *maxBatch,
		BatchWait:      *batchWait,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		RequestTimeout: *timeout,
		DrainTimeout:   *drainTimeout,
		AccessLog:      logDst,
		AccessLogEvery: *accessLogEvery,
		DisableTracing: *noTrace,
		Cascade:        serve.CascadeConfig{Enabled: *cascadeOn, Margin: *cascadeMargin},
		Adapt:          *adaptSpec,
		Reload: serve.ReloadPolicy{
			Retries:     *reloadRetries,
			BaseBackoff: *reloadBackoff,
			TripAfter:   *breakerTrip,
			Cooldown:    *breakerCool,
		},
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	switch *role {
	case "worker":
		w, err := cluster.NewWorker(cluster.WorkerConfig{Spool: *spool, Serve: serveCfg})
		if err != nil {
			log.Fatal(err)
		}
		if m := w.Server().Registry().Current(); m != nil {
			log.Printf("worker: resuming spooled shard bundle v%d (generation %d): %d front-ends",
				m.Version, m.ClusterGeneration(), len(m.Bundle.FrontEnds))
		} else {
			log.Printf("worker: empty spool %s, waiting for coordinator push", *spool)
		}
		log.Printf("worker serving on http://%s", ln.Addr())
		go func() {
			for range hup {
				if m, err := w.Server().Reload(); err != nil {
					log.Printf("reload failed (previous shard still active): %v", err)
				} else {
					log.Printf("reloaded shard bundle: now v%d", m.Version)
				}
			}
		}()
		if err := w.Run(ctx, ln); err != nil {
			log.Fatal(err)
		}
		log.Printf("drained cleanly")
		return

	case "coordinator":
		if *peers == "" {
			log.Fatal("coordinator role needs -peers (comma-separated worker addresses)")
		}
		c, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			ModelDir:       *models,
			Peers:          splitPeers(*peers),
			ShardTimeout:   *shardTimeout,
			RequestTimeout: *timeout,
			ProbeInterval:  *probeInterval,
			Breaker:        cluster.BreakerPolicy{TripAfter: *breakerTrip, Cooldown: *breakerCool},
			PushRetries:    *reloadRetries,
			PushBackoff:    *reloadBackoff,
			DrainTimeout:   *drainTimeout,
			DisableTracing: *noTrace,
			Cascade:        serve.CascadeConfig{Enabled: *cascadeOn, Margin: *cascadeMargin},
		})
		if err != nil {
			log.Fatal(err)
		}
		// First distribution: workers may still be booting, so a failure
		// here is not fatal — the repair loop keeps retrying.
		if err := c.Distribute(ctx); err != nil {
			log.Printf("initial distribution incomplete (repair loop will retry): %v", err)
		} else {
			log.Printf("distributed generation %d to %d workers", c.Plan(), len(splitPeers(*peers)))
		}
		log.Printf("coordinator serving on http://%s (shard-timeout=%s)", ln.Addr(), *shardTimeout)
		go func() {
			for range hup {
				if gen, err := c.Reload(context.Background()); err != nil {
					log.Printf("%v", err)
				} else {
					log.Printf("reloaded + redistributed: now generation %d", gen)
				}
			}
		}()
		if err := c.Run(ctx, ln); err != nil {
			log.Fatal(err)
		}
		log.Printf("drained cleanly")
		return
	}

	s, err := serve.New(serveCfg)
	if err != nil {
		log.Fatal(err)
	}
	m := s.Registry().Current()
	log.Printf("loaded bundle v%d from %s: %d front-ends, %d languages, fusion=%v",
		m.Version, *models, len(m.Bundle.FrontEnds), len(m.Bundle.Languages), m.Bundle.Fusion != nil)
	if a := s.Adapter(); a != nil {
		st := a.Status()
		log.Printf("online adaptation on: generation %d, policy %s", st.Generation, st.Policy)
	}
	log.Printf("serving on http://%s (max-batch=%d queue=%d)", ln.Addr(), *maxBatch, *queueDepth)

	// SIGHUP hot-reloads the bundle through the retry/backoff + breaker
	// policy; in-flight requests keep the model they were admitted with.
	go func() {
		for range hup {
			if m, err := s.Reload(); err != nil {
				log.Printf("reload failed (previous model still active): %v", err)
			} else {
				log.Printf("reloaded bundle: now v%d", m.Version)
			}
		}
	}()

	if err := s.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}

// splitPeers parses the -peers flag (comma-separated, blanks ignored).
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// openAccessLog resolves the -access-log flag: the standard streams by
// name, 'none' (or empty) for off, anything else an append-opened file.
func openAccessLog(dst string) (io.Writer, error) {
	switch dst {
	case "", "none":
		return nil, nil
	case "stderr":
		return os.Stderr, nil
	case "stdout":
		return os.Stdout, nil
	default:
		f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("open access log: %w", err)
		}
		return f, nil
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/experiments"
)

// The observability-overhead benchmark behind BENCH_obs.json's
// "serve_overhead" section: drive the daemon with the same request mix
// twice — tracing dark (DisableTracing: spans, /tracez, access log, and
// rolling windows all off) and tracing on (the production default) — and
// report what the instrumentation costs. Repeats interleave exactly like
// the batching benchmark so machine drift cancels, and every response is
// still checked bit-identical against the batch pipeline: tracing must
// never change a score.

type obsOverheadReport struct {
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	Clients    int    `json:"clients"`
	Repeats    int    `json:"repeats"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go"`

	Plain  benchSummary `json:"plain"`
	Traced benchSummary `json:"traced"`

	// ThroughputCostPct is how much aggregate throughput tracing gives up:
	// (plain - traced) / plain, in percent. LatencyCostP50Pct/P99Pct are
	// the relative server-side latency regressions. Negative values mean
	// the traced run measured faster (noise at small overheads).
	ThroughputCostPct float64 `json:"throughput_cost_pct"`
	LatencyCostP50Pct float64 `json:"latency_cost_p50_pct"`
	LatencyCostP99Pct float64 `json:"latency_cost_p99_pct"`
}

func runBenchObs(cfg benchConfig) error {
	scale, err := experiments.ParseScale(cfg.scale)
	if err != nil {
		return err
	}
	log.Printf("bench-obs: building pipeline (scale=%s seed=%d)…", scale, cfg.seed)
	p := experiments.BuildPipeline(scale, cfg.seed)
	dir, err := os.MkdirTemp("", "lred-bench-obs")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, err := p.ExportModels(dir, ""); err != nil {
		return err
	}
	bodies, expected, feNames := benchRequestsFrom(p)
	log.Printf("bench-obs: %d distinct utterances, %d requests × %d clients per phase",
		len(bodies), cfg.requests, cfg.clients)

	if cfg.repeats < 1 {
		cfg.repeats = 1
	}
	configs := []struct {
		name           string
		disableTracing bool
	}{
		{"plain", true},
		{"traced", false},
	}
	runs := make([][]benchPhase, len(configs))
	for r := 0; r < cfg.repeats; r++ {
		order := []int{0, 1}
		if r%2 == 1 {
			order = []int{1, 0}
		}
		for _, ci := range order {
			c := configs[ci]
			phase, err := runBenchPhase(dir, c.name, cfg.maxBatch, c.disableTracing, cfg, bodies, expected, feNames)
			if err != nil {
				return fmt.Errorf("bench-obs phase %s: %w", c.name, err)
			}
			log.Printf("bench-obs: [%d/%d] %-6s %8.1f req/s  p50=%.3gms p99=%.3gms  (%d scores checked, %d mismatches)",
				r+1, cfg.repeats, phase.Name, phase.Throughput, phase.P50Ms, phase.P99Ms, phase.ScoreChecked, phase.Mismatches)
			if phase.Mismatches > 0 {
				return fmt.Errorf("bench-obs phase %s: %d score mismatches — tracing changed scores", c.name, phase.Mismatches)
			}
			runs[ci] = append(runs[ci], *phase)
		}
	}

	rep := obsOverheadReport{
		Scale:      scale.String(),
		Seed:       cfg.seed,
		Clients:    cfg.clients,
		Repeats:    cfg.repeats,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Plain:      summarize(runs[0]),
		Traced:     summarize(runs[1]),
	}
	if rep.Plain.Throughput > 0 {
		rep.ThroughputCostPct = (rep.Plain.Throughput - rep.Traced.Throughput) / rep.Plain.Throughput * 100
	}
	if rep.Plain.P50Ms > 0 {
		rep.LatencyCostP50Pct = (rep.Traced.P50Ms - rep.Plain.P50Ms) / rep.Plain.P50Ms * 100
	}
	if rep.Plain.P99Ms > 0 {
		rep.LatencyCostP99Pct = (rep.Traced.P99Ms - rep.Plain.P99Ms) / rep.Plain.P99Ms * 100
	}

	if err := mergeBenchObs(cfg.out, &rep); err != nil {
		return err
	}
	log.Printf("bench-obs: tracing costs %.2f%% throughput, %.2f%% p50, %.2f%% p99; wrote %s",
		rep.ThroughputCostPct, rep.LatencyCostP50Pct, rep.LatencyCostP99Pct, cfg.out)
	return nil
}

// mergeBenchObs writes rep under the "serve_overhead" key of out,
// preserving any other top-level keys already there (BENCH_obs.json also
// carries the offline pipeline's obs report; JSON consumers ignore keys
// they don't know).
func mergeBenchObs(out string, rep *obsOverheadReport) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["serve_overhead"] = enc
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	e := json.NewEncoder(f)
	e.SetIndent("", "  ")
	if err := e.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/serve"
)

// The load benchmark behind BENCH_serve.json: build a pipeline, export
// its bundle, and drive the real daemon over HTTP twice — once with
// micro-batching disabled (max-batch 1) and once enabled — with the same
// request mix. Every response is checked bit-identical against the batch
// pipeline's baseline scores, so the throughput comparison is at equal
// correctness by construction. Latency quantiles come from the server's
// own /metricsz report, not client-side clocks.

type benchConfig struct {
	scale    string
	seed     uint64
	requests int
	clients  int
	maxBatch int
	repeats  int
	workers  int // fleet benchmark worker count
	out      string
}

type benchPhase struct {
	Name        string  `json:"name"`
	MaxBatch    int     `json:"max_batch"`
	Requests    int     `json:"requests"`
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"requests_per_second"`
	// Server-side /v1/score latency from the daemon's own obs histogram.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Batching effectiveness, also from /metricsz.
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch_size"`
	Rejected  int64   `json:"rejected_429"`
	// Pure SVM scoring cost from the pool.serve-score counters: worker
	// busy time summed over the phase, and its per-request share. This is
	// the cost micro-batching acts on; wall-clock throughput additionally
	// includes the per-request HTTP/JSON work batching cannot touch.
	ScoreBusySeconds float64 `json:"score_busy_seconds"`
	ScoreUsPerReq    float64 `json:"score_us_per_request"`
	ScoreChecked     int     `json:"scores_checked"`
	Mismatches       int     `json:"score_mismatches"`

	// Fleet-phase extras (see benchfleet.go); carried out of the phase
	// runner without entering the per-phase JSON.
	rpcP50Ms, rpcP99Ms float64
}

// benchSummary aggregates one configuration's interleaved repeats: total
// requests over total wall clock, so run-to-run machine drift (which hits
// adjacent repeats of both configurations alike) cancels in the ratio.
type benchSummary struct {
	Name          string       `json:"name"`
	MaxBatch      int          `json:"max_batch"`
	Requests      int          `json:"requests"`
	WallSeconds   float64      `json:"wall_seconds"`
	Throughput    float64      `json:"requests_per_second"`
	P50Ms         float64      `json:"p50_ms"` // from the median-throughput repeat
	P99Ms         float64      `json:"p99_ms"`
	MeanBatch     float64      `json:"mean_batch_size"`
	ScoreUsPerReq float64      `json:"score_us_per_request"`
	Checked       int          `json:"scores_checked"`
	Mismatches    int          `json:"score_mismatches"`
	Runs          []benchPhase `json:"runs"`
}

func summarize(runs []benchPhase) benchSummary {
	s := benchSummary{Name: runs[0].Name, MaxBatch: runs[0].MaxBatch, Runs: runs}
	var batches, jobs int64
	var busy float64
	for _, r := range runs {
		s.Requests += r.Requests
		s.WallSeconds += r.WallSeconds
		s.Checked += r.ScoreChecked
		s.Mismatches += r.Mismatches
		batches += r.Batches
		jobs += int64(float64(r.Batches) * r.MeanBatch)
		busy += r.ScoreBusySeconds
	}
	s.Throughput = float64(s.Requests) / s.WallSeconds
	s.ScoreUsPerReq = busy / float64(s.Requests) * 1e6
	if batches > 0 {
		s.MeanBatch = float64(jobs) / float64(batches)
	}
	// Latency quantiles from the median-throughput repeat (aggregating
	// histogram quantiles across runs would need the raw buckets).
	med := make([]benchPhase, len(runs))
	copy(med, runs)
	sort.Slice(med, func(i, j int) bool { return med[i].Throughput < med[j].Throughput })
	s.P50Ms = med[len(med)/2].P50Ms
	s.P99Ms = med[len(med)/2].P99Ms
	return s
}

type benchReport struct {
	Scale      string         `json:"scale"`
	Seed       uint64         `json:"seed"`
	Clients    int            `json:"clients"`
	Repeats    int            `json:"repeats"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go"`
	FrontEnds  int            `json:"front_ends"`
	Phases     []benchSummary `json:"phases"`
	// Speedup is aggregate batched throughput over unbatched, end to end.
	Speedup float64 `json:"batched_speedup"`
	// ScoringSpeedup compares pure per-request SVM scoring cost (worker
	// busy time), the component batching actually optimizes.
	ScoringSpeedup float64 `json:"batched_scoring_speedup"`
}

func runBench(cfg benchConfig) error {
	scale, err := experiments.ParseScale(cfg.scale)
	if err != nil {
		return err
	}
	log.Printf("bench: building pipeline (scale=%s seed=%d)…", scale, cfg.seed)
	p := experiments.BuildPipeline(scale, cfg.seed)
	dir, err := os.MkdirTemp("", "lred-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, err := p.ExportModels(dir, ""); err != nil {
		return err
	}

	// Request bodies: every pooled test utterance's six already-scaled
	// supervectors, with the pipeline's baseline score matrix as the
	// expected response.
	bodies, expected, feNames := benchRequestsFrom(p)
	log.Printf("bench: %d distinct utterances, %d requests × %d clients per phase",
		len(bodies), cfg.requests, cfg.clients)

	if cfg.repeats < 1 {
		cfg.repeats = 1
	}
	rep := benchReport{
		Scale:      scale.String(),
		Seed:       cfg.seed,
		Clients:    cfg.clients,
		Repeats:    cfg.repeats,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		FrontEnds:  len(p.FEs),
	}
	configs := []struct {
		name     string
		maxBatch int
	}{
		{"unbatched", 1},
		{"batched", cfg.maxBatch},
	}
	// Interleave repeats (and alternate order every other round) so slow
	// patches of a shared machine hit both configurations equally.
	runs := make([][]benchPhase, len(configs))
	for r := 0; r < cfg.repeats; r++ {
		order := []int{0, 1}
		if r%2 == 1 {
			order = []int{1, 0}
		}
		for _, ci := range order {
			c := configs[ci]
			// Tracing stays at its production default (on) so the
			// batched-vs-unbatched comparison reflects the shipped config;
			// the tracing cost itself is -bench-obs's subject.
			phase, err := runBenchPhase(dir, c.name, c.maxBatch, false, cfg, bodies, expected, feNames)
			if err != nil {
				return fmt.Errorf("bench phase %s: %w", c.name, err)
			}
			log.Printf("bench: [%d/%d] %-9s %8.1f req/s  score %.0fµs/req  p50=%.3gms p99=%.3gms  mean batch %.1f  (%d scores checked, %d mismatches)",
				r+1, cfg.repeats, phase.Name, phase.Throughput, phase.ScoreUsPerReq, phase.P50Ms, phase.P99Ms, phase.MeanBatch, phase.ScoreChecked, phase.Mismatches)
			if phase.Mismatches > 0 {
				return fmt.Errorf("bench phase %s: %d score mismatches vs the batch pipeline", c.name, phase.Mismatches)
			}
			runs[ci] = append(runs[ci], *phase)
		}
	}
	for _, rs := range runs {
		rep.Phases = append(rep.Phases, summarize(rs))
	}
	if rep.Phases[0].Throughput > 0 {
		rep.Speedup = rep.Phases[1].Throughput / rep.Phases[0].Throughput
	}
	if rep.Phases[1].ScoreUsPerReq > 0 {
		rep.ScoringSpeedup = rep.Phases[0].ScoreUsPerReq / rep.Phases[1].ScoreUsPerReq
	}

	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("bench: batched speedup %.2fx; wrote %s", rep.Speedup, cfg.out)
	return nil
}

// benchRequestsFrom marshals one /v1/score body per pooled test utterance
// (all front-ends, scaled supervectors) and the exact score rows the
// batch pipeline produced for it; expected[j][q] aligns with feNames[q].
func benchRequestsFrom(p *experiments.Pipeline) (bodies [][]byte, expected [][][]float64, feNames []string) {
	for _, fe := range p.FEs {
		feNames = append(feNames, fe.Name)
	}
	n := len(p.TestLabels)
	for j := 0; j < n; j++ {
		req := serve.ScoreRequest{
			ID:        fmt.Sprintf("seg%05d", j),
			FrontEnds: make(map[string]serve.FrontEndInput, len(p.FEs)),
		}
		exp := make([][]float64, len(p.FEs))
		for q, fe := range p.FEs {
			v := p.Data[q].Test[j]
			req.FrontEnds[fe.Name] = serve.FrontEndInput{Supervector: &serve.Supervector{
				Idx: v.Idx, Val: v.Val, Scaled: true,
			}}
			exp[q] = p.BaselineScores[q][j]
		}
		body, err := json.Marshal(&req)
		if err != nil {
			panic(err)
		}
		bodies = append(bodies, body)
		expected = append(expected, exp)
	}
	return bodies, expected, feNames
}

func runBenchPhase(modelDir, name string, maxBatch int, disableTracing bool, cfg benchConfig, bodies [][]byte, expected [][][]float64, feNames []string) (*benchPhase, error) {
	// Fresh metrics per phase so /metricsz reflects this phase only.
	obs.Reset()
	s, err := serve.New(serve.Config{
		ModelDir:       modelDir,
		MaxBatch:       maxBatch,
		QueueDepth:     4096, // the bench measures batching, not admission control
		DisableTracing: disableTracing,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}

	var next atomic.Int64
	var checked, mismatches atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.requests {
					return
				}
				j := i % len(bodies)
				resp, err := client.Post(base+"/v1/score", "application/json", bytes.NewReader(bodies[j]))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d: %s", resp.StatusCode, data))
					return
				}
				var sr serve.ScoreResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				// Exact equality with the batch pipeline: JSON float64
				// round-trips are lossless, so any drift is a real bug.
				for q, fe := range feNames {
					got, want := sr.Scores[fe], expected[j][q]
					if len(got) != len(want) {
						mismatches.Add(1)
						continue
					}
					for k := range want {
						checked.Add(1)
						if got[k] != want[k] {
							mismatches.Add(1)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		cancel()
		<-runErr
		return nil, err
	}

	// Pull the server's own view before draining it.
	metrics, err := fetchMetrics(client, base)
	if err != nil {
		cancel()
		<-runErr
		return nil, err
	}
	cancel()
	if err := <-runErr; err != nil {
		return nil, fmt.Errorf("server drain: %w", err)
	}

	ph := &benchPhase{
		Name:             name,
		MaxBatch:         maxBatch,
		Requests:         cfg.requests,
		WallSeconds:      wall.Seconds(),
		Throughput:       float64(cfg.requests) / wall.Seconds(),
		Batches:          metrics.Counters["serve.batches"],
		Rejected:         metrics.Counters["serve.queue.rejected"],
		ScoreBusySeconds: float64(metrics.Counters["pool.serve-score.busy_ns"]) / 1e9,
		ScoreChecked:     int(checked.Load()),
		Mismatches:       int(mismatches.Load()),
	}
	ph.ScoreUsPerReq = ph.ScoreBusySeconds / float64(cfg.requests) * 1e6
	if h, ok := metrics.Histograms["serve.http.score.seconds"]; ok {
		ph.P50Ms = h.P50Sec * 1e3
		ph.P99Ms = h.P99Sec * 1e3
	}
	if ph.Batches > 0 {
		ph.MeanBatch = float64(metrics.Counters["serve.batched_jobs"]) / float64(ph.Batches)
	}
	return ph, nil
}

func fetchMetrics(client *http.Client, base string) (*obs.Report, error) {
	resp, err := client.Get(base + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Command lre regenerates the paper's evaluation tables and figures on the
// synthetic LRE09 substitute corpus.
//
// Usage:
//
//	lre -scale medium -seed 42 -table all     # Tables 1–5 + Fig. 3
//	lre -table 1                              # T_DBA composition vs V
//	lre -table 2                              # DBA-M1 sweep
//	lre -table 3                              # DBA-M2 sweep
//	lre -table 4 -V 3                         # fusion comparison
//	lre -table 5                              # real-time factors
//	lre -fig 3                                # DET curve points
//	lre -ablation vote                        # vote-criterion ablation
//
// Model export for the online scoring daemon (cmd/lred):
//
//	lre -scale small -seed 42 -export-models ./models
//
// writes the trained baseline bundle — per-front-end TFLLR scalers and
// one-vs-rest SVM sets plus the trial-level fusion backend — as
// bundle.gob with a manifest.json provenance sidecar (seed, scale,
// front-ends, git describe). cmd/lred serves it; see README "Serving".
//
// Checkpoint/resume (see DESIGN.md "Checkpointing & crash safety"):
//
//	lre -scale full -table all -checkpoint-dir ./ckpt           # checkpoint as you go
//	lre -scale full -table all -checkpoint-dir ./ckpt -resume   # continue a killed run
//	lre … -checkpoint-every 2 -checkpoint-keep 3                # thin rounds, prune after success
//	lre … -chaos 'seed=1; checkpoint.save.prepublish:panic:every=1,after=3,count=1'
//
// Resumed runs produce byte-identical tables; a corrupt or torn newest
// checkpoint generation falls back to the previous one.
//
// Observability (internal/obs) outputs:
//
//	lre -table 5 -trace-out trace.json        # per-stage span tree
//	lre -metrics-out metrics.json             # counters/gauges/histograms
//	lre -report-out BENCH_obs.json            # trace + metrics + run meta
//	lre -pprof-cpu cpu.out -pprof-mem mem.out # stdlib pprof profiles
//
// The pipeline (corpus generation, decoding, supervector extraction,
// baseline training) is built once and shared by all requested outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/scorefile"
	"repro/internal/svm"
	"repro/internal/synthlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lre: ")
	var (
		scaleFlag  = flag.String("scale", "small", "corpus scale: tiny|small|medium|full")
		seed       = flag.Uint64("seed", 42, "experiment seed")
		table      = flag.String("table", "", "table to regenerate: 1|2|3|4|5|all")
		fig        = flag.String("fig", "", "figure to regenerate: 3")
		vFlag      = flag.Int("V", 3, "vote threshold for Table 4 / Fig. 3")
		ablation   = flag.String("ablation", "", "ablation to run: vote|fa")
		iterate    = flag.Int("iterate", 0, "run N-round iterated DBA (extension; 0 = off)")
		openset    = flag.Int("openset", 0, "evaluate open-set condition with N out-of-set languages (extension; 0 = off)")
		scoresOut  = flag.String("scores", "", "write LRE-style score files for the baseline subsystems to this path")
		exportDir  = flag.String("export-models", "", "export the trained baseline bundle + manifest for cmd/lred to this directory")
		exportReqs = flag.String("export-requests", "", "write pooled test utterances as replay /v1/score request bodies (JSON Lines, vote-selected first) to this path")
		exportReqN = flag.Int("export-requests-count", 64, "with -export-requests: how many requests to write (0 = all)")
		traceOut   = flag.String("trace-out", "", "write the span trace (per-stage wall times) as JSON to this path")
		metricsOut = flag.String("metrics-out", "", "write counters/gauges/latency histograms as JSON to this path")
		reportOut  = flag.String("report-out", "", "write the full run report (trace + metrics + meta) as JSON to this path")
		pprofCPU   = flag.String("pprof-cpu", "", "write a CPU profile of the whole run to this path")
		pprofMem   = flag.String("pprof-mem", "", "write a heap profile at end of run to this path")
		benchHot   = flag.String("bench-hotpath", "", "run the hot-path before/after benchmark protocol and write the JSON report to this path (see EXPERIMENTS.md)")
		compEval   = flag.String("compress-eval", "", "run the rank × precision compression sweep (size, load time, throughput, fused ΔEER) and write the JSON report (BENCH_compress.json) to this path")
		compRank   = flag.Int("compress-rank", 0, "with -export-models: export a compressed bundle at this projection rank (0 = uncompressed)")
		compPrec   = flag.String("compress-precision", "int8", "with -compress-rank: packed basis/kernel precision: float64|float32|int8")
		cascEval   = flag.String("cascade-eval", "", "train the tier-1 cascade, sweep thresholds, and write the accuracy/latency/traffic tradeoff curve JSON (BENCH_cascade.json) to this path")
		cascMargin = flag.String("cascade-margin", "", "threshold offset policy for -cascade-eval's default operating point, e.g. \"0\" or \"default=0;30s=0.05\" (empty = calibrated margins as-is)")
		ckDir      = flag.String("checkpoint-dir", "", "checkpoint directory: phase results are saved here and (with -resume) restored")
		resume     = flag.Bool("resume", false, "resume from the newest intact generation in -checkpoint-dir (required when the dir already holds checkpoints)")
		ckEvery    = flag.Int("checkpoint-every", 1, "save every Nth iterative-DBA round checkpoint (phase checkpoints are always saved)")
		ckKeep     = flag.Int("checkpoint-keep", 0, "after a successful run, prune checkpoint generations older than the newest N (0 = keep all)")
		chaos      = flag.String("chaos", "", "deterministic fault-injection plan, e.g. \"seed=1; checkpoint.save.prepublish:panic:after=3,count=1\"")
	)
	flag.Parse()
	if *chaos != "" {
		plan, err := faultinject.ParsePlan(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		faultinject.Enable(plan)
		log.Printf("chaos plan armed: %s", *chaos)
	}
	if *benchHot != "" {
		runBenchHotpath(*benchHot)
		return
	}
	if *table == "" && *fig == "" && *ablation == "" && *exportDir == "" && *exportReqs == "" && *cascEval == "" && *compEval == "" {
		*table = "all"
	}

	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Compression flags fail fast, before the (potentially minutes-long)
	// pipeline build.
	if *compRank < 0 {
		log.Fatalf("-compress-rank %d: rank must be >= 0 (0 = uncompressed)", *compRank)
	}
	if *compRank > 0 || *compEval != "" {
		if _, perr := svm.ParsePrecision(*compPrec); perr != nil {
			log.Fatal(perr)
		}
	}

	wantTable := func(n string) bool {
		return *table == "all" || *table == n ||
			strings.Contains(","+*table+",", ","+n+",")
	}
	needPipeline := wantTable("1") || wantTable("2") || wantTable("3") ||
		wantTable("4") || *fig == "3" || *ablation != "" || *scoresOut != "" ||
		*iterate > 0 || *openset > 0 || *exportDir != "" || *exportReqs != "" ||
		*cascEval != "" || *compEval != ""

	var ck *experiments.Checkpointer
	var store *checkpoint.Store
	if *ckDir != "" {
		store, err = checkpoint.Open(*ckDir, checkpoint.Meta{Scale: scale.String(), Seed: *seed})
		if err != nil {
			log.Fatalf("checkpoint dir %s: %v", *ckDir, err)
		}
		if store.Generation() > 0 && !*resume {
			log.Fatalf("checkpoint dir %s already holds generation %d: pass -resume or use a fresh dir",
				*ckDir, store.Generation())
		}
		if store.Generation() > 0 {
			log.Printf("resuming from checkpoint generation %d (%d entries, %d corrupt generations skipped)",
				store.Generation(), store.Len(), store.FellBack())
		}
		ck = &experiments.Checkpointer{Store: store, Every: *ckEvery}
	}

	var p *experiments.Pipeline
	if needPipeline {
		start := time.Now()
		log.Printf("building pipeline (scale=%s seed=%d)…", scale, *seed)
		p, err = experiments.BuildPipelineCK(scale, *seed, ck)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pipeline ready in %.1fs: train=%d dev=%d test=%d utterances × 6 front-ends",
			time.Since(start).Seconds(), len(p.TrainLabels), len(p.DevLabels), len(p.TestLabels))
	}

	out := os.Stdout
	if wantTable("1") {
		fmt.Fprintln(out, experiments.RunTable1(p))
	}
	if wantTable("2") {
		fmt.Fprintln(out, experiments.RunTableDBA(p, dba.M1))
	}
	if wantTable("3") {
		fmt.Fprintln(out, experiments.RunTableDBA(p, dba.M2))
	}
	if wantTable("4") {
		t4 := experiments.RunTable4(p, *vFlag)
		fmt.Fprintln(out, t4)
		fmt.Fprintln(out, t4.Summary())
	}
	if wantTable("5") {
		t5, err := experiments.RunTable5(experiments.DefaultTable5Config())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, t5)
	}
	if *fig == "3" {
		fmt.Fprintln(out, experiments.RunFig3(p, *vFlag))
	}
	if *ablation == "vote" {
		fmt.Fprintln(out, experiments.RunVoteAblation(p, *vFlag))
	}
	if *ablation == "fa" {
		fmt.Fprintln(out, "Vote-calibration FA sweep (|T_DBA| and label error at V=3):")
		for _, fa := range []float64{0.01, 0.02, 0.03, 0.05, 0.08, 0.12} {
			st := p.SelectionStatsAtFA(fa, *vFlag)
			fmt.Fprintf(out, "  fa=%-5.2f |T_DBA|=%5d  err=%5.2f%%\n", st.FA, st.Size, st.ErrorRatePct)
		}
		fmt.Fprintln(out)
	}
	if *iterate > 0 {
		o := p.IterativeDBA(*vFlag, dba.M2, *iterate)
		fmt.Fprintln(out, p.IterativeReport(o))
	}
	if *openset > 0 {
		fmt.Fprintln(out, experiments.RunOpenSet(p, *openset, 8))
	}
	if *scoresOut != "" {
		if err := writeScores(p, *scoresOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote score file %s", *scoresOut)
	}
	if *exportDir != "" {
		var m *persist.Manifest
		if *compRank > 0 {
			prec, perr := svm.ParsePrecision(*compPrec)
			if perr != nil {
				log.Fatal(perr)
			}
			m, err = p.ExportModelsCompressed(*exportDir, gitDescribe(), *compRank, prec)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("exported compressed bundle to %s: %d front-ends, rank %d, precision %s",
				*exportDir, len(m.FrontEnds), *compRank, prec)
		} else {
			m, err = p.ExportModels(*exportDir, gitDescribe())
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("exported bundle to %s: %d front-ends, %d languages, fusion=%v, cascade=%q",
				*exportDir, len(m.FrontEnds), m.NumLanguages, m.Fusion, m.Cascade)
		}
	}
	if *exportReqs != "" {
		written, voted, err := p.ExportRequests(*exportReqs, *exportReqN)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("exported %d replay requests to %s (%d vote-selected)", written, *exportReqs, voted)
	}
	if *compEval != "" {
		rep, err := experiments.RunCompressEval(p, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*compEval, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		if rep.Headline != nil {
			log.Printf("compress-eval: headline rank=%d precision=%s size=%.1fx speedup=%.2fx max|ΔEER|=%.2f → %s",
				rep.Headline.Rank, rep.Headline.Precision, rep.Headline.SizeReduction,
				rep.Headline.Speedup, rep.Headline.MaxAbsDeltaEER, *compEval)
		} else {
			log.Printf("compress-eval: no operating point met the headline criteria → %s", *compEval)
		}
	}
	if *cascEval != "" {
		if err := runCascadeEval(p, *cascMargin, *cascEval); err != nil {
			log.Fatal(err)
		}
	}

	if store != nil && *ckKeep > 0 {
		if err := store.Prune(*ckKeep); err != nil {
			log.Printf("checkpoint prune: %v", err)
		} else {
			log.Printf("pruned checkpoint dir to the newest %d generations", *ckKeep)
		}
	}

	if *traceOut != "" || *metricsOut != "" || *reportOut != "" {
		rep := obs.Snapshot()
		rep.Meta = map[string]string{
			"scale":      scale.String(),
			"seed":       strconv.FormatUint(*seed, 10),
			"table":      *table,
			"fig":        *fig,
			"go":         runtime.Version(),
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		}
		writeJSON := func(path string, r *obs.Report, what string) {
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s %s", what, path)
		}
		if *traceOut != "" {
			writeJSON(*traceOut, rep.SpansOnly(), "trace")
		}
		if *metricsOut != "" {
			writeJSON(*metricsOut, rep.MetricsOnly(), "metrics")
		}
		if *reportOut != "" {
			writeJSON(*reportOut, rep, "run report")
		}
	}

	if *pprofMem != "" {
		f, err := os.Create(*pprofMem)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote heap profile %s", *pprofMem)
	}
}

// gitDescribe records build provenance in exported manifests; an empty
// string when git (or the repo) is unavailable.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// writeScores dumps every baseline subsystem's pooled test scores as an
// LRE-style score file, one system per front-end, ready for external
// scoring tools (or for re-evaluation via internal/scorefile).
func writeScores(p *experiments.Pipeline, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var records []scorefile.Record
	for q, d := range p.Data {
		for _, dur := range corpus.Durations {
			// Restrict to the duration tier so each record carries its
			// nominal duration.
			scores := make([][]float64, len(p.TestLabels))
			for _, j := range p.TestIdx[dur] {
				scores[j] = p.BaselineScores[q][j]
			}
			records = append(records, scorefile.FromScoreMatrix(
				"baseline-"+d.Name, dur, scores, p.TestLabels, synthlang.LanguageNames, nil)...)
		}
	}
	return scorefile.Write(f, records)
}

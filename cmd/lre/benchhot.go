package main

import (
	"log"
	"os"

	"repro/internal/benchhot"
)

// runBenchHotpath executes the hot-path benchmark protocol
// (internal/benchhot) and writes the before/after report. The committed
// BENCH_hotpath.json at the repo root is produced by exactly this mode;
// EXPERIMENTS.md documents how to regenerate and compare it.
func runBenchHotpath(path string) {
	log.Printf("running hot-path benchmark protocol (this re-times the seed implementations, ~1min)…")
	rep := benchhot.Run()
	if !rep.BitIdentical {
		log.Fatal("bench-hotpath: optimized paths are NOT bit-identical to the reference implementations; report not written")
	}
	out, err := rep.JSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	for _, e := range rep.Benchmarks {
		log.Printf("%-20s %.2fx faster, %.1fx less allocated bytes (%.0f → %.0f ns/op)",
			e.Name, e.Speedup, e.AllocReduction, e.Before.NsPerOp, e.After.NsPerOp)
	}
	log.Printf("wrote %s", path)
}

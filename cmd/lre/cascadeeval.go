package main

import (
	"encoding/json"
	"log"
	"os"
	"time"

	"repro/internal/cascade"
	"repro/internal/experiments"
)

// runCascadeEval is the -cascade-eval path: train the tier-1 cascade on
// the pipeline, sweep the threshold grid per duration tier, measure the
// heavy-vs-cascade serving throughput at the requested (default:
// calibrated) policy, and write the whole tradeoff curve as JSON — the
// committed BENCH_cascade.json protocol (see EXPERIMENTS.md).
func runCascadeEval(p *experiments.Pipeline, marginSpec, path string) error {
	pol, err := cascade.ParsePolicy(marginSpec)
	if err != nil {
		return err
	}
	start := time.Now()
	bench, err := p.RunCascadeBench(pol)
	if err != nil {
		return err
	}
	bench.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	for _, tp := range bench.Throughput {
		log.Printf("cascade %s: exit %.0f%%, heavy %.0f utt/s, cascade %.0f utt/s, speedup %.2fx",
			tp.Tier, 100*tp.ExitFrac, tp.HeavyUttPerSec, tp.CascadeUttPerSec, tp.Speedup)
	}
	for _, ev := range bench.Default {
		log.Printf("cascade %s: tier-1 acc %.2f%%, EER heavy %.2f%% cascade %.2f%% (delta %+.2f)",
			ev.Tier, ev.Tier1AccPct, ev.EERHeavyPct, ev.EERCascadePct, ev.EERDeltaPct)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote cascade tradeoff curve %s in %.1fs", path, time.Since(start).Seconds())
	return nil
}

// serving: the online-scoring workflow end to end, in one process — train
// a tiny battery, export its bundle with ExportModels, stand up the
// internal/serve server (the same registry + micro-batching machinery
// cmd/lred wraps), then act as a client: score an utterance by phone
// lattice over HTTP, hot-reload a retrained bundle while requests are in
// flight, and drain gracefully.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)

	// 1. Train the batch pipeline and export the serving bundle.
	fmt.Println("== training (scale=tiny) and exporting the bundle ==")
	p := experiments.BuildPipeline(experiments.ScaleTiny, 42)
	dir, err := os.MkdirTemp("", "serving-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	m, err := p.ExportModels(dir, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle: %d front-ends %v, %d languages, fusion=%v\n\n",
		len(m.FrontEnds), m.FrontEnds, m.NumLanguages, m.Fusion)

	// 2. Start the scoring server on a loopback port. cmd/lred does
	// exactly this plus signal wiring.
	s, err := serve.New(serve.Config{ModelDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, shutdown := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("== serving on %s ==\n", base)

	var ready map[string]any
	getJSON(base+"/readyz", &ready)
	fmt.Printf("readyz: %v\n\n", ready)

	// 3. Score an utterance by phone lattice: the client ships posterior
	// slots for one front-end; the server rebuilds the n-gram supervector,
	// applies TFLLR, and runs the one-vs-rest SVMs.
	fe := m.FrontEnds[0]
	req := serve.ScoreRequest{
		ID: "utt-0",
		FrontEnds: map[string]serve.FrontEndInput{
			fe: {Lattice: [][]serve.Slot{
				{{Phone: 3, Prob: 0.8}, {Phone: 9, Prob: 0.2}},
				{{Phone: 14, Prob: 1.0}},
				{{Phone: 3, Prob: 0.6}, {Phone: 21, Prob: 0.4}},
				{{Phone: 7, Prob: 0.9}, {Phone: 2, Prob: 0.1}},
			}},
		},
	}
	var res serve.ScoreResponse
	postJSON(base+"/v1/score", req, &res)
	fmt.Printf("== scored %q against model v%d ==\n", res.ID, res.ModelVersion)
	top := 0
	for k := range res.Scores[fe] {
		if res.Scores[fe][k] > res.Scores[fe][top] {
			top = k
		}
	}
	fmt.Printf("front-end %s top language: %s (%.3f)\n", fe, res.Languages[top], res.Scores[fe][top])
	fmt.Printf("best (server pick): %s\n\n", res.Best)

	// 4. Hot reload: re-export (a retrain in real life) and flip the
	// registry. In-flight requests keep the model they were admitted with;
	// new ones see v2.
	fmt.Println("== hot reload ==")
	if _, err := p.ExportModels(dir, ""); err != nil {
		log.Fatal(err)
	}
	var rel map[string]any
	postJSON(base+"/-/reload", struct{}{}, &rel)
	fmt.Printf("now serving model v%v\n", rel["model_version"])
	var res2 serve.ScoreResponse
	postJSON(base+"/v1/score", req, &res2)
	fmt.Printf("same request now answered by v%d\n\n", res2.ModelVersion)

	// 5. Graceful drain: cancel the serve context (what SIGTERM does in
	// cmd/lred); queued work finishes, then Run returns nil.
	fmt.Println("== draining ==")
	shutdown()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}

func postJSON(url string, in, out any) {
	body, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// serving: the online-scoring workflow end to end, in one process — train
// a tiny battery, export its bundle with ExportModels, stand up the
// internal/serve server (the same registry + micro-batching machinery
// cmd/lred wraps), then act as a client: score an utterance by phone
// lattice over HTTP, hot-reload a retrained bundle while requests are in
// flight, and drain gracefully. Part two turns on the tier-1 cascade
// fast path (`lred -cascade`) and shows both a tier-1 exit and a
// transparent escalation. Part three scales the same bundle out to a
// two-worker scatter–gather fleet (internal/cluster, what
// `lred -role=coordinator|worker` wraps), kills a worker mid-service,
// and shows survivor fusion degrading the response instead of failing it.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)

	// 1. Train the batch pipeline and export the serving bundle.
	fmt.Println("== training (scale=tiny) and exporting the bundle ==")
	p := experiments.BuildPipeline(experiments.ScaleTiny, 42)
	dir, err := os.MkdirTemp("", "serving-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	m, err := p.ExportModels(dir, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle: %d front-ends %v, %d languages, fusion=%v\n\n",
		len(m.FrontEnds), m.FrontEnds, m.NumLanguages, m.Fusion)

	// 2. Start the scoring server on a loopback port. cmd/lred does
	// exactly this plus signal wiring.
	s, err := serve.New(serve.Config{ModelDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, shutdown := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("== serving on %s ==\n", base)

	var ready map[string]any
	getJSON(base+"/readyz", &ready)
	fmt.Printf("readyz: %v\n\n", ready)

	// 3. Score an utterance by phone lattice: the client ships posterior
	// slots for one front-end; the server rebuilds the n-gram supervector,
	// applies TFLLR, and runs the one-vs-rest SVMs.
	fe := m.FrontEnds[0]
	req := serve.ScoreRequest{
		ID: "utt-0",
		FrontEnds: map[string]serve.FrontEndInput{
			fe: {Lattice: [][]serve.Slot{
				{{Phone: 3, Prob: 0.8}, {Phone: 9, Prob: 0.2}},
				{{Phone: 14, Prob: 1.0}},
				{{Phone: 3, Prob: 0.6}, {Phone: 21, Prob: 0.4}},
				{{Phone: 7, Prob: 0.9}, {Phone: 2, Prob: 0.1}},
			}},
		},
	}
	var res serve.ScoreResponse
	postJSON(base+"/v1/score", req, &res)
	fmt.Printf("== scored %q against model v%d ==\n", res.ID, res.ModelVersion)
	top := 0
	for k := range res.Scores[fe] {
		if res.Scores[fe][k] > res.Scores[fe][top] {
			top = k
		}
	}
	fmt.Printf("front-end %s top language: %s (%.3f)\n", fe, res.Languages[top], res.Scores[fe][top])
	fmt.Printf("best (server pick): %s\n\n", res.Best)

	// 4. Hot reload: re-export (a retrain in real life) and flip the
	// registry. In-flight requests keep the model they were admitted with;
	// new ones see v2.
	fmt.Println("== hot reload ==")
	if _, err := p.ExportModels(dir, ""); err != nil {
		log.Fatal(err)
	}
	var rel map[string]any
	postJSON(base+"/-/reload", struct{}{}, &rel)
	fmt.Printf("now serving model v%v\n", rel["model_version"])
	var res2 serve.ScoreResponse
	postJSON(base+"/v1/score", req, &res2)
	fmt.Printf("same request now answered by v%d\n\n", res2.ModelVersion)

	// 5. Graceful drain: cancel the serve context (what SIGTERM does in
	// cmd/lred); queued work finishes, then Run returns nil.
	fmt.Println("== draining ==")
	shutdown()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")

	cascadeWalkthrough(dir, req.FrontEnds[fe].Lattice)
	fleetWalkthrough(dir, m.FrontEnds, req.FrontEnds[fe].Lattice)
}

// cascadeWalkthrough restarts the same bundle with the tier-1 cascade
// fast path on (`lred -cascade`): ExportModels already trained a cheap
// phone-LM classifier into the bundle, and a request whose 1-best
// margin clears the calibrated bar is answered without ever touching
// the supervector/SVM/fusion path. The margin policy here forces both
// outcomes so the annotation is visible: "+inf" answers everything at
// tier 1, "-inf" escalates everything (bit-identical to no cascade —
// the transparency contract TESTING.md's cascade suite pins).
func cascadeWalkthrough(dir string, lattice [][]serve.Slot) {
	fmt.Println("\n== part two: cascade fast path ==")
	for _, margin := range []string{"+inf", "-inf"} {
		s, err := serve.New(serve.Config{
			ModelDir: dir,
			Cascade:  serve.CascadeConfig{Enabled: true, Margin: margin},
		})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctx, shutdown := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- s.Run(ctx, ln) }()

		m := s.Registry().Current()
		req := serve.ScoreRequest{ID: "utt-casc", FrontEnds: map[string]serve.FrontEndInput{
			m.Bundle.Cascade.FrontEnd: {Lattice: lattice},
		}}
		var res serve.ScoreResponse
		postJSON("http://"+ln.Addr().String()+"/v1/score", req, &res)
		fmt.Printf("margin %s: best=%s cascade={exited:%v tier:%q reason:%q}\n",
			margin, res.Best, res.Cascade.Exited, res.Cascade.Tier, res.Cascade.Reason)

		shutdown()
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
}

// fleetWalkthrough scales the same bundle out: two shared-nothing shard
// workers, a coordinator that scatters per-front-end RPCs and gathers
// them into one response, and a worker kill demonstrating the
// degradation contract (`lred -role=coordinator -peers=...` wraps
// exactly this).
func fleetWalkthrough(dir string, frontEnds []string, lattice [][]serve.Slot) {
	// A fleet request covers the full battery so the scatter spans both
	// workers and fusion has every subsystem to draw on.
	req := serve.ScoreRequest{ID: "utt-fleet", FrontEnds: make(map[string]serve.FrontEndInput)}
	for _, fe := range frontEnds {
		req.FrontEnds[fe] = serve.FrontEndInput{Lattice: lattice}
	}
	fmt.Println("\n== part three: two-worker scatter–gather fleet ==")

	// 1. Start two workers, each with its own lifecycle so one can be
	// killed later. A worker begins empty (it owns no model until the
	// coordinator assigns it a shard of the bundle) and serves 503 until
	// its first push.
	var peers []string
	var kill []context.CancelFunc
	for i := 0; i < 2; i++ {
		spool, err := os.MkdirTemp("", "serving-example-spool")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(spool)
		w, err := cluster.NewWorker(cluster.WorkerConfig{Spool: spool})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		wctx, stop := context.WithCancel(context.Background())
		defer stop()
		go w.Run(wctx, ln)
		peers = append(peers, ln.Addr().String())
		kill = append(kill, stop)
	}
	fmt.Printf("workers: %v\n", peers)

	// 2. The coordinator loads the full bundle, splits it into per-worker
	// sub-bundles (front-end i → worker i%n), pushes them, and pins the
	// fleet to one cluster generation so responses never mix model
	// versions.
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		ModelDir:     dir,
		Peers:        peers,
		ShardTimeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	if err := coord.Distribute(ctx); err != nil {
		log.Fatal(err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go coord.Run(ctx, cln)
	base := "http://" + cln.Addr().String()

	var cz cluster.Clusterz
	getJSON(base+"/clusterz", &cz)
	fmt.Printf("generation %d, shard assignment:\n", cz.Generation)
	for _, p := range cz.Peers {
		fmt.Printf("  %s → %v\n", p.Addr, p.FrontEnds)
	}

	// 3. Same client request, same wire API — the coordinator scatters
	// each front-end to the worker that owns it and gathers the scores.
	var res serve.ScoreResponse
	postJSON(base+"/v1/score", req, &res)
	fmt.Printf("fleet scored %q: best=%s degraded=%v\n", res.ID, res.Best, res.Degraded)

	// 4. Kill one worker. The missed shard degrades the response exactly
	// like a failed front-end in a standalone server: its scores drop
	// out, fusion rescales over the survivors, and the client still gets
	// a 2xx with the loss spelled out on the wire.
	fmt.Println("== killing worker 0 ==")
	kill[0]()
	time.Sleep(300 * time.Millisecond) // let its listener close
	resp, err := http.Post(base+"/v1/score", "application/json", marshalBody(req))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var degraded serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&degraded); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status %d, degraded=%v, surviving=%v\n", resp.StatusCode, degraded.Degraded, degraded.Surviving)
}

func marshalBody(v any) io.Reader {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return bytes.NewReader(data)
}

func postJSON(url string, in, out any) {
	body, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// fusionpipeline: the parallel-front-end architecture of Fig. 1 with the
// LDA-MMI fusion backend of Eq. 14–15 — a miniature of Table 4.
//
//	go run ./examples/fusionpipeline
//
// Six phone recognizers decode the same utterances; each subsystem's
// one-vs-rest SVM scores are stacked, projected by LDA, and calibrated by
// an MMI-trained Gaussian backend. The fused system beats every single
// front-end.
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fmt.Println("building pipeline (tiny scale)…")
	p := experiments.BuildPipeline(experiments.ScaleTiny, 42)

	fmt.Printf("\n%-10s", "system")
	for _, dur := range corpus.Durations {
		fmt.Printf("  %4.0fs EER%%", dur)
	}
	fmt.Println()
	for q, d := range p.Data {
		fmt.Printf("%-10s", d.Name)
		for _, dur := range corpus.Durations {
			eer, _ := experiments.Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])
			fmt.Printf("  %9.2f", eer)
		}
		fmt.Println()
	}

	t4 := experiments.RunTable4(p, 3)
	fmt.Printf("%-10s", "fusion")
	for _, dur := range corpus.Durations {
		fmt.Printf("  %9.2f", t4.BaselineFusion[dur].EER)
	}
	fmt.Println()
	fmt.Printf("%-10s", "DBA-fusion")
	for _, dur := range corpus.Durations {
		fmt.Printf("  %9.2f", t4.DBAFusion[dur].EER)
	}
	fmt.Println()
	fmt.Println()
	fmt.Print(t4.Summary())
}

// acousticvsphonotactic: the two language-recognition families the paper's
// introduction contrasts, run head-to-head on the same synthetic audio:
//
//   - acoustic: SDC features + GMM-UBM with MAP adaptation (the paper's
//     reference [3] family), and
//   - phonotactic: phone recognition → lattice → expected-bigram
//     supervector → SVM (PPRVSM, the paper's baseline).
//
// On this corpus the phonotactic system wins by a wide margin — by
// construction: the synthetic languages share one acoustic phone
// inventory and differ only in *phonotactics*, so language identity flows
// through the channel PPRVSM (and DBA) operates on. See EXPERIMENTS.md.
//
//	go run ./examples/acousticvsphonotactic
package main

import (
	"fmt"
	"log"

	"repro/internal/acousticlr"
	"repro/internal/feats"
	"repro/internal/frontend"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

const (
	seed     = 17
	numLangs = 4
	perLang  = 12
	testPer  = 5
	durS     = 8.0
)

func main() {
	log.SetFlags(0)
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:numLangs]
	ext := feats.NewExtractor(feats.DefaultConfig())
	synth := synthspeech.New()
	root := rng.New(seed)

	// Render every utterance once; both systems consume the same audio.
	type utt struct {
		wav   []float64
		label int
	}
	render := func(split string, lang *synthlang.Language, li, i int) utt {
		r := root.SplitString(split).SplitString(lang.Name).Split(uint64(i))
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSClean)
		return utt{wav: synth.Render(r, u), label: li}
	}
	var train, test []utt
	for li, lang := range langs {
		for i := 0; i < perLang; i++ {
			train = append(train, render("train", lang, li, i))
		}
		for i := 0; i < testPer; i++ {
			test = append(test, render("test", lang, li, i))
		}
	}
	fmt.Printf("rendered %d train + %d test utterances (%.0fs each, %d languages)\n\n",
		len(train), len(test), durS, numLangs)

	// --- Acoustic system: SDC + GMM-UBM ---
	fmt.Println("acoustic system: SDC 7-1-3-7 + GMM-UBM (MAP-adapted means)")
	sdc := func(wav []float64) [][]float64 {
		cep := ext.MFCC(wav)
		return acousticlr.ComputeSDC(cep, acousticlr.DefaultSDC())
	}
	framesPerLang := make([][][]float64, numLangs)
	for _, u := range train {
		framesPerLang[u.label] = append(framesPerLang[u.label], sdc(u.wav)...)
	}
	acfg := acousticlr.DefaultConfig()
	acfg.UBMMix = 16
	rec, err := acousticlr.Train(acfg, framesPerLang)
	if err != nil {
		log.Fatal(err)
	}
	acousticCorrect := 0
	for _, u := range test {
		if rec.Classify(sdc(u.wav)) == u.label {
			acousticCorrect++
		}
	}

	// --- Phonotactic system: acoustic phone recognizer + PPRVSM ---
	fmt.Println("phonotactic system: GMM-HMM phone recognizer + expected bigrams + TFLLR SVM")
	fcfg := frontend.DefaultAcousticConfig("fe", frontend.GMMHMM, 20, seed)
	fcfg.TrainUtterances = 40
	fcfg.UtteranceDurS = 5
	fe, err := frontend.TrainAcoustic(fcfg, langs)
	if err != nil {
		log.Fatal(err)
	}
	supervector := func(wav []float64) *sparse.Vector {
		return fe.Space.Supervector(fe.DecodeAudio(wav))
	}
	var trainX []*sparse.Vector
	var trainY []int
	for _, u := range train {
		trainX = append(trainX, supervector(u.wav))
		trainY = append(trainY, u.label)
	}
	tf := ngram.EstimateTFLLR(trainX, fe.Space.Dim(), 1e-5)
	for _, v := range trainX {
		tf.Apply(v)
	}
	ovr := svm.TrainOneVsRest(trainX, trainY, numLangs, fe.Space.Dim(), svm.DefaultOptions())
	phonoCorrect := 0
	for _, u := range test {
		v := supervector(u.wav)
		tf.Apply(v)
		if ovr.Classify(v) == u.label {
			phonoCorrect++
		}
	}

	fmt.Printf("\nresults on %d held-out utterances (chance %.0f%%):\n", len(test), 100.0/numLangs)
	fmt.Printf("  acoustic (GMM-UBM):       %2d/%d  (%.0f%%)\n",
		acousticCorrect, len(test), 100*float64(acousticCorrect)/float64(len(test)))
	fmt.Printf("  phonotactic (PPRVSM):     %2d/%d  (%.0f%%)\n",
		phonoCorrect, len(test), 100*float64(phonoCorrect)/float64(len(test)))
	fmt.Println("\n(the corpus carries language identity phonotactically by design — see EXPERIMENTS.md)")
}

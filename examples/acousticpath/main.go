// acousticpath: the full acoustic pipeline, end to end and for real —
// no simulated decoder anywhere:
//
//	waveform synthesis → PLP features → GMM-HMM phone recognizer
//	(trained here, from scratch) → Viterbi decoding → confusion-network
//	lattice → expected-bigram supervector → SVM language classification.
//
//	go run ./examples/acousticpath
//
// This is the path the paper's systems run on telephone audio; the
// synthetic formant speech stands in for the closed corpora (DESIGN.md).
package main

import (
	"fmt"
	"log"

	"repro/internal/frontend"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

func main() {
	log.SetFlags(0)
	const (
		seed     = 11
		numLangs = 3
		perLang  = 20
		testPer  = 5
		durS     = 10.0
	)
	langs := synthlang.Generate(synthlang.DefaultConfig(), seed)[:numLangs]

	fmt.Println("training a GMM-HMM phone recognizer on synthetic telephone speech…")
	acfg := frontend.DefaultAcousticConfig("demo", frontend.GMMHMM, 20, seed)
	acfg.TrainUtterances = 48
	acfg.UtteranceDurS = 5
	acfg.GaussiansPerState = 4
	fe, err := frontend.TrainAcoustic(acfg, langs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recognizer ready: %d phones × 3 states, PLP(+Δ+ΔΔ) front-end\n", fe.Set.Size)

	synth := synthspeech.New()
	root := rng.New(seed)
	decode := func(split string, lang *synthlang.Language, i int) *sparse.Vector {
		r := root.SplitString(split).SplitString(lang.Name).Split(uint64(i))
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSClean)
		wav := synth.Render(r, u) // 8 kHz samples
		lat := fe.DecodeAudio(wav)
		return fe.Space.Supervector(lat)
	}

	var trainX []*sparse.Vector
	var trainY []int
	fmt.Printf("decoding %d training utterances through the acoustic path…\n", numLangs*perLang)
	for li, lang := range langs {
		for i := 0; i < perLang; i++ {
			trainX = append(trainX, decode("train", lang, i))
			trainY = append(trainY, li)
		}
	}
	tf := ngram.EstimateTFLLR(trainX, fe.Space.Dim(), 1e-5)
	for _, v := range trainX {
		tf.Apply(v)
	}
	ovr := svm.TrainOneVsRest(trainX, trainY, numLangs, fe.Space.Dim(), svm.DefaultOptions())

	correct, total := 0, 0
	for li, lang := range langs {
		for i := 0; i < testPer; i++ {
			v := decode("test", lang, i)
			tf.Apply(v)
			if ovr.Classify(v) == li {
				correct++
			}
			total++
		}
	}
	fmt.Printf("language ID over real decoded audio: %d/%d correct (%.0f%%, chance %.0f%%)\n",
		correct, total, 100*float64(correct)/float64(total), 100.0/float64(numLangs))
}

// Quickstart: the smallest complete phonotactic language-recognition
// pipeline — PPRVSM with a single front-end on a handful of languages.
//
//	go run ./examples/quickstart
//
// It generates a synthetic corpus, decodes each utterance into a phone
// lattice with the Hungarian ANN-HMM front-end, builds TFLLR-scaled
// expected-bigram supervectors, trains one-versus-rest SVM language
// models, and reports test accuracy and EER.
package main

import (
	"fmt"
	"log"

	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
)

func main() {
	log.SetFlags(0)
	const (
		seed     = 7
		numLangs = 5
		perLang  = 25
		testPer  = 10
		durS     = 10
	)
	langs := synthlang.Generate(synthlang.DefaultConfig(), seed)[:numLangs]
	fe := frontend.New("HU", frontend.ANNHMM, 59, seed)
	root := rng.New(seed)

	decode := func(split string, lang *synthlang.Language, i int) *sparse.Vector {
		r := root.SplitString(split).SplitString(lang.Name).Split(uint64(i))
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSClean)
		return fe.Space.Supervector(fe.Decode(r, u))
	}

	// Training supervectors.
	var trainX []*sparse.Vector
	var trainY []int
	for li, lang := range langs {
		for i := 0; i < perLang; i++ {
			trainX = append(trainX, decode("train", lang, i))
			trainY = append(trainY, li)
		}
	}
	// TFLLR background from the training set (Eq. 5).
	tf := ngram.EstimateTFLLR(trainX, fe.Space.Dim(), 1e-5)
	for _, v := range trainX {
		tf.Apply(v)
	}

	fmt.Printf("training %d one-vs-rest SVMs on %d utterances (dim %d)…\n",
		numLangs, len(trainX), fe.Space.Dim())
	ovr := svm.TrainOneVsRest(trainX, trainY, numLangs, fe.Space.Dim(), svm.DefaultOptions())

	// Test.
	var trials []metrics.Trial
	correct, total := 0, 0
	for li, lang := range langs {
		for i := 0; i < testPer; i++ {
			v := decode("test", lang, i)
			tf.Apply(v)
			scores := ovr.Scores(v)
			best := 0
			for k, s := range scores {
				if s > scores[best] {
					best = k
				}
				trials = append(trials, metrics.Trial{Score: s, Target: k == li})
			}
			if best == li {
				correct++
			}
			total++
		}
	}
	fmt.Printf("test accuracy: %d/%d (%.1f%%)\n", correct, total, 100*float64(correct)/float64(total))
	fmt.Printf("pooled detection EER: %.2f%%\n", metrics.EER(trials)*100)
	fmt.Println("languages:", names(langs))
}

func names(langs []*synthlang.Language) []string {
	out := make([]string, len(langs))
	for i, l := range langs {
		out[i] = l.Name
	}
	return out
}

// saveload: the train-once / score-many production workflow — train a
// PPRVSM subsystem, persist every artifact (SVM language models, TFLLR
// scaler, phone LM) to disk, reload them in a fresh "scoring process", and
// verify bit-identical scores; finally export the scores as an LRE-style
// score file and re-evaluate it with cmd/evalscores-compatible parsing.
//
//	go run ./examples/saveload
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/ngram"
	"repro/internal/persist"
	"repro/internal/rng"
	"repro/internal/scorefile"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
)

func main() {
	log.SetFlags(0)
	const (
		seed     = 21
		numLangs = 6
		perLang  = 20
		testPer  = 8
		durS     = 10.0
	)
	dir, err := os.MkdirTemp("", "saveload")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:numLangs]
	fe := frontend.New("HU", frontend.ANNHMM, 59, seed)
	root := rng.New(seed)
	decode := func(split string, lang *synthlang.Language, i int) *sparse.Vector {
		r := root.SplitString(split).SplitString(lang.Name).Split(uint64(i))
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSClean)
		return fe.Space.Supervector(fe.Decode(r, u))
	}

	// --- Training process ---
	var trainX []*sparse.Vector
	var trainY []int
	for li, lang := range langs {
		for i := 0; i < perLang; i++ {
			trainX = append(trainX, decode("train", lang, i))
			trainY = append(trainY, li)
		}
	}
	tf := ngram.EstimateTFLLR(trainX, fe.Space.Dim(), 1e-5)
	for _, v := range trainX {
		tf.Apply(v)
	}
	ovr := svm.TrainOneVsRest(trainX, trainY, numLangs, fe.Space.Dim(), svm.DefaultOptions())

	ovrPath := filepath.Join(dir, "models.gob")
	tfPath := filepath.Join(dir, "tfllr.gob")
	must(persist.Save(ovrPath, ovr))
	must(persist.Save(tfPath, tf))
	fmt.Printf("trained and saved: %d language models (dim %d) + TFLLR scaler\n",
		numLangs, fe.Space.Dim())

	// --- Scoring process (fresh state, loads everything from disk) ---
	var loadedOVR svm.OneVsRest
	var loadedTF ngram.TFLLR
	must(persist.Load(ovrPath, &loadedOVR))
	must(persist.Load(tfPath, &loadedTF))
	fmt.Println("reloaded models in a fresh scorer")

	var records []scorefile.Record
	names := synthlang.LanguageNames[:numLangs]
	identical := true
	var trials []metrics.Trial
	for li, lang := range langs {
		for i := 0; i < testPer; i++ {
			v := decode("test", lang, i)
			loadedTF.Apply(v)
			scores := loadedOVR.Scores(v)
			// Cross-check against the in-memory models.
			orig := ovr.Scores(v)
			for k := range scores {
				if scores[k] != orig[k] {
					identical = false
				}
				trials = append(trials, metrics.Trial{Score: scores[k], Target: k == li})
			}
			records = append(records, scorefile.FromScoreMatrix(
				"hu-pprvsm", durS, [][]float64{scores}, []int{li}, names,
				[]string{fmt.Sprintf("%s-%02d", lang.Name, i)})...)
		}
	}
	fmt.Printf("loaded scores bit-identical to training process: %v\n", identical)
	fmt.Printf("test EER: %.2f%%\n", metrics.EER(trials)*100)

	scorePath := filepath.Join(dir, "scores.tsv")
	f, err := os.Create(scorePath)
	must(err)
	must(scorefile.Write(f, records))
	must(f.Close())

	// Re-read and re-evaluate, as an external scorer would.
	f2, err := os.Open(scorePath)
	must(err)
	defer f2.Close()
	back, err := scorefile.Read(f2)
	must(err)
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	pairs, err := scorefile.ToPairTrials(back, idx)
	must(err)
	fmt.Printf("score file round trip: %d records, EER from file %.2f%%\n",
		len(back), metrics.EER(metrics.PairTrialsToDetection(pairs))*100)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

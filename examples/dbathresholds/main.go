// dbathresholds: the DBA architecture of Fig. 2 on a small corpus —
// sweep the vote threshold V and watch the trade-off of Table 1 plus its
// effect on second-pass EER (the U-shape of Tables 2–3).
//
//	go run ./examples/dbathresholds
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fmt.Println("building pipeline (tiny scale)…")
	p := experiments.BuildPipeline(experiments.ScaleTiny, 42)
	fmt.Printf("train %d, dev %d, test %d utterances; 6 front-ends; 23 languages\n\n",
		len(p.TrainLabels), len(p.DevLabels), len(p.TestLabels))

	fmt.Println("V  |T_DBA|  label-err%   mean EER% (DBA-M2, across front-ends)")
	for v := 6; v >= 1; v-- {
		o := p.DBAOutcome(v, dba.M2)
		errPct := dba.SelectionErrorRate(o.Selected, p.TestLabels) * 100
		var sum float64
		var n int
		for q := range p.Data {
			for _, dur := range corpus.Durations {
				eer, _ := experiments.Eval(o.Scores[q], p.TestLabels, p.TestIdx[dur])
				sum += eer
				n++
			}
		}
		fmt.Printf("%d  %6d   %8.2f   %8.2f\n", v, len(o.Selected), errPct, sum/float64(n))
	}

	var base float64
	var n int
	for q := range p.Data {
		for _, dur := range corpus.Durations {
			eer, _ := experiments.Eval(p.BaselineScores[q], p.TestLabels, p.TestIdx[dur])
			base += eer
			n++
		}
	}
	fmt.Printf("\nbaseline mean EER: %.2f%%\n", base/float64(n))
	fmt.Println("(small V admits noisy labels, large V starves the retraining set —")
	fmt.Println(" the paper's optimum sits in between, at V = 3 on NIST LRE 2009)")
}

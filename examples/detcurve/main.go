// detcurve: compute and render a DET curve (the coordinate system of the
// paper's Fig. 3) for a small single-front-end system, as an ASCII plot
// on probit axes plus the EER point.
//
//	go run ./examples/detcurve
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
)

func main() {
	log.SetFlags(0)
	const (
		seed     = 13
		numLangs = 8
		perLang  = 20
		testPer  = 12
		durS     = 10.0
	)
	langs := synthlang.Generate(synthlang.DefaultConfig(), seed)[:numLangs]
	fe := frontend.New("CZ", frontend.ANNHMM, 43, seed)
	root := rng.New(seed)

	decode := func(split string, lang *synthlang.Language, i int) *sparse.Vector {
		r := root.SplitString(split).SplitString(lang.Name).Split(uint64(i))
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSNoisy)
		return fe.Space.Supervector(fe.Decode(r, u))
	}

	var trainX []*sparse.Vector
	var trainY []int
	for li, lang := range langs {
		for i := 0; i < perLang; i++ {
			trainX = append(trainX, decode("train", lang, i))
			trainY = append(trainY, li)
		}
	}
	tf := ngram.EstimateTFLLR(trainX, fe.Space.Dim(), 1e-5)
	for _, v := range trainX {
		tf.Apply(v)
	}
	ovr := svm.TrainOneVsRest(trainX, trainY, numLangs, fe.Space.Dim(), svm.DefaultOptions())

	var trials []metrics.Trial
	for li, lang := range langs {
		for i := 0; i < testPer; i++ {
			v := decode("test", lang, i)
			tf.Apply(v)
			for k, s := range ovr.Scores(v) {
				trials = append(trials, metrics.Trial{Score: s, Target: k == li})
			}
		}
	}

	eer := metrics.EER(trials)
	pts := metrics.DET(trials)
	fmt.Printf("system: %s front-end, %d languages, %gs noisy-channel test\n", fe.Name, numLangs, durS)
	fmt.Printf("EER = %.2f%%   (%d detection trials)\n\n", eer*100, len(trials))

	// ASCII DET plot on probit axes over [0.5%, 50%].
	const size = 31
	lo, hi := metrics.Probit(0.005), metrics.Probit(0.5)
	grid := make([][]byte, size)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", size))
	}
	toCell := func(p float64) int {
		z := metrics.Probit(p)
		c := int((z - lo) / (hi - lo) * float64(size-1))
		if c < 0 {
			c = 0
		}
		if c >= size {
			c = size - 1
		}
		return c
	}
	for _, pt := range pts {
		if pt.Pfa <= 0 || pt.Pmiss <= 0 || pt.Pfa >= 1 || pt.Pmiss >= 1 {
			continue
		}
		grid[size-1-toCell(pt.Pmiss)][toCell(pt.Pfa)] = '*'
	}
	d := toCell(eer)
	grid[size-1-d][d] = 'O'
	fmt.Println("Pmiss (probit 0.5%→50%) ↑, Pfa (probit 0.5%→50%) →;  O marks the EER point")
	for _, row := range grid {
		fmt.Printf("|%s|\n", row)
	}
}
